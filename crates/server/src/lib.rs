//! # soctam-server
//!
//! The networked serving daemon over [`soctam_core::engine::Engine`]: a
//! std-only (no async runtime — the workspace vendors every dependency),
//! multi-threaded TCP listener that turns the DAC 2002 co-optimization
//! flow into a long-lived service.
//!
//! # Wire protocol
//!
//! A connection is a plain TCP byte stream of newline-delimited text.
//! Each request line uses the *same grammar as a `soctam batch` request
//! file* — both run through one parser,
//! [`soctam_core::protocol::parse_request`], so the file format and the
//! wire format can never drift apart:
//!
//! ```text
//! schedule <soc> --width W   [--power] [--no-preempt] [--trace]
//! sweep    <soc> [--from A] [--to B]   [--power] [--no-preempt] [--trace]
//! bounds   <soc> [--widths a,b,c]      [--power] [--no-preempt] [--trace]
//! ```
//!
//! Blank lines and `#` comments are skipped, exactly as in a batch file.
//! `<soc>` must be a benchmark name (`d695`, `p22810`, `p34392`,
//! `p93791`): the daemon never reads filesystem paths on behalf of remote
//! peers. Every request line is answered with exactly one JSON object on
//! one line ([`soctam_core::protocol::render_result`]); a line that fails
//! to parse is answered with `{"ok": false, "error": "..."}` and the
//! connection stays usable. Responses are bit-identical to calling the
//! `Engine` directly — cached or not — which the loopback suite pins.
//!
//! # Phase tracing
//!
//! Every served request line runs under a
//! [`soctam_core::schedule::obs`] span recorder: the daemon opens
//! `resolve` and `render` spans around parsing and response formatting,
//! the engine opens `cache_lookup` around its solution-cache closure, and
//! the solve path nested inside a miss opens `context_compile`,
//! `menu_build`, `sweep`, and `validate` at the actual work sites — so a
//! warm request's compile and menu phases report exactly zero. The trace
//! feeds four exports:
//!
//! * `--trace` (or `trace=1`) on a request line embeds a `"trace"` object
//!   in that response: total and per-phase exclusive microseconds, the
//!   span tree, the cache disposition, and the process-wide solver
//!   counter deltas observed across the solve (concurrent traffic can
//!   inflate the deltas — they are process counters, not request ones).
//!   The flag is presentation-only and never part of the cache identity;
//! * each JSONL request-log record carries a `"phases"` object of the
//!   non-zero exclusive phase micros;
//! * `/metrics` exports `soctam_request_latency_seconds` histograms per
//!   request kind × cache disposition plus cumulative
//!   `soctam_phase_seconds_total{phase="..."}` counters;
//! * with [`ServerConfig::slow_log`] set, any request at or over the
//!   threshold appends a full trace record (request-log fields plus
//!   `"phases"` and `"spans"`) to [`ServerConfig::slow_log_path`], or to
//!   stderr when no path is given.
//!
//! # Connection lifecycle limits
//!
//! The daemon does not trust its peers. Every connection is bounded in
//! three dimensions, each configurable through [`ServerConfig`]:
//!
//! * **time** — [`ServerConfig::idle_timeout`] arms `set_read_timeout` and
//!   `set_write_timeout` on the socket, so an idle peer (or one too slow
//!   to accept its responses) is reaped instead of pinning a pool worker
//!   forever;
//! * **bytes** — [`ServerConfig::max_line_bytes`] caps the length of one
//!   request line (and of each HTTP header line) via bounded reads
//!   (`Read::take`): a peer streaming bytes without a newline can never
//!   grow the daemon's line buffer past the cap. An oversized request
//!   line is answered with a parse-error JSON object and the connection
//!   is closed;
//! * **requests** — [`ServerConfig::max_requests`] caps how many requests
//!   one keep-alive connection may issue; the cap'th response is written
//!   in full, then the connection closes gracefully.
//!
//! On shutdown the daemon drains gracefully: idle connections are severed
//! immediately (there is nothing to flush), while connections with a
//! request in flight get up to [`ServerConfig::drain`] to finish solving
//! and flush their response before being severed.
//!
//! # Admission control
//!
//! Accepted connections queue on a *bounded* channel of capacity
//! [`ServerConfig::max_pending`]. When every worker is busy and the queue
//! is full, the daemon **sheds** instead of queueing without limit: the
//! connection is answered immediately — protocol peers get one structured
//! line, `{"ok": false, "busy": true, "transient": true, ...}`, HTTP peers
//! get `503 Service Unavailable` with `Retry-After` — and closed. Sheds
//! are counted (`soctam_shed_total`), the queue depth is exported as a
//! gauge, and `GET /healthz` degrades to `503` while the queue is
//! saturated so load balancers stop routing to a drowning instance.
//! Shedding keeps tail latency bounded under overload: capacity is spent
//! finishing admitted requests, not growing an unbounded backlog.
//!
//! # Panic isolation
//!
//! A panic anywhere in a request's solve path is confined to that
//! request. The engine catches solver panics and renders them as
//! transient error responses; the solution cache and context registry
//! publish panics to coalesced waiters and tear the slot down (waiters
//! retry, never hang); and each pool worker is guarded — if a connection
//! handler panics anyway, the worker is respawned and the daemon keeps
//! serving. Every recovery is visible in `/metrics`
//! (`soctam_worker_panics_total`, `soctam_solver_panics_recovered_total`,
//! cache/registry panic counters). Shared-state mutexes recover from
//! poisoning rather than propagating it: a panic that interleaved with a
//! critical section must not take down every later request that touches
//! the same lock.
//!
//! # Fault injection
//!
//! [`ServerConfig::fault_plan`] arms a deterministic
//! [`soctam_core::fault::FaultPlan`] (`serve --fault-inject
//! "solve:panic:every=97,io:latency=5ms:every=13"`): `solve`-site faults
//! strike inside the engine (under its panic isolation), `io`-site faults
//! strike the daemon's per-request connection handling — latency stalls
//! the response, `error` severs the connection as a dead transport would,
//! `panic` kills the worker mid-request (exercising the respawn guard).
//! Firing is counter-based, not random, so a chaos run is reproducible
//! and non-faulted responses can be pinned bit-identical to a fault-free
//! run. Injections are exported per spec as
//! `soctam_fault_injected_total{fault="..."}`.
//!
//! # Request log
//!
//! With [`ServerConfig::log_path`] set, every served request line appends
//! one JSON object to the log file (JSONL):
//!
//! ```text
//! {"ts_micros": 1722950000000000, "peer": "127.0.0.1:51044",
//!  "request": "schedule d695 --width 16", "outcome": "ok",
//!  "cache": "hit", "latency_micros": 142, "phases": {"resolve": 17}}
//! ```
//!
//! `outcome` is `ok`, `error` (the engine rejected the request),
//! `parse_error`, or `oversized` (the line blew the byte cap; such
//! records carry no `request` field). `cache` is the solution-cache
//! disposition (`hit`/`miss`/`coalesced`/`uncached`), or `none` for
//! lines that never reached the engine. The log doubles as a replay
//! input: `soctam client --file LOG` replays it against a daemon and
//! prints latency percentiles, and `soctam serve --warm LOG`
//! ([`Server::warm_from_text`]) pre-solves its requests at startup so
//! the cache starts hot.
//!
//! # HTTP surface
//!
//! A connection whose first line is an HTTP/1.1 `GET` is served one
//! response and closed:
//!
//! * `GET /healthz` — `200 OK`, body `ok` — or `503 Service Unavailable`,
//!   body `saturated`, while the pending queue is full (see *Admission
//!   control* above);
//! * `GET /metrics` — `200 OK`, Prometheus text exposition (`# TYPE`-
//!   annotated counters and gauges) of request, cache, registry, and
//!   solver counters;
//! * anything else — `404 Not Found`.
//!
//! # Caching
//!
//! The daemon layers a [`soctam_core::schedule::SolutionCache`] between the
//! listener and the engine, keyed by `(SOC content, width cap, power
//! budget, operation, scheduling mode, parameter grid)` — the
//! [`soctam_core::schedule::ContextRegistry`] key plus width, mode, and grid —
//! so a repeat request returns without invoking the solver, and
//! concurrent identical requests coalesce onto one solve. An optional TTL
//! bounds the staleness of both cached solutions and compiled contexts
//! ([`soctam_core::schedule::ContextRegistry::with_ttl`]).
//!
//! # Example
//!
//! ```
//! use soctam_server::{client, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let responses = client::roundtrip(addr, &["bounds d695 --widths 16,32"]).unwrap();
//! assert!(client::response_ok(&responses[0]));
//! let (status, body) = client::http_get(addr, "/healthz").unwrap();
//! assert!(status.contains("200"));
//! assert_eq!(body, "ok\n");
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use soctam_core::engine::{CacheDisposition, Engine, EngineOp};
use soctam_core::fault::{FaultAction, FaultPlan, FaultSite};
use soctam_core::protocol;
use soctam_core::schedule::obs;
use soctam_core::schedule::{instrument, lock_unpoisoned, ContextRegistry};
use soctam_core::soc::Soc;

pub mod balance;
pub mod client;

/// Configuration of a serving daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections (each serves one connection at
    /// a time; clamped to at least 1).
    pub threads: usize,
    /// Total solution-cache capacity in results; 0 disables result
    /// caching (every request re-solves).
    pub cache_capacity: usize,
    /// Total context-registry capacity in compiled contexts.
    pub registry_capacity: usize,
    /// Optional time-to-live applied to both cached solutions and
    /// compiled contexts; `None` means entries never expire.
    pub ttl: Option<Duration>,
    /// Per-connection read/write deadline (`set_read_timeout` /
    /// `set_write_timeout`): a peer idle (or unwriteable) for this long is
    /// reaped, freeing its pool worker. `None` trusts peers to hang up —
    /// appropriate only behind a front end that enforces its own deadlines.
    pub idle_timeout: Option<Duration>,
    /// Most requests one keep-alive connection may issue; the last
    /// response is written in full, then the connection closes
    /// gracefully. `None` means unlimited.
    pub max_requests: Option<u64>,
    /// Byte cap on one request line (and each HTTP header line), enforced
    /// with bounded reads so a newline-free byte stream can never grow the
    /// daemon's line buffer past it. Oversized request lines are answered
    /// with a parse-error JSON object and the connection is closed.
    /// Clamped to at least 64.
    pub max_line_bytes: usize,
    /// Shutdown grace for connections with a request in flight: the drain
    /// window in which their solve may finish and the response flush
    /// before the socket is severed. Idle connections are severed
    /// immediately regardless.
    pub drain: Duration,
    /// Append a JSONL record per served request line to this file (see
    /// the [module docs](self) for the schema). `None` disables logging.
    pub log_path: Option<PathBuf>,
    /// Most accepted connections that may wait for a free worker before
    /// the daemon starts shedding (see *Admission control* in the
    /// [module docs](self)). Clamped to at least 1.
    pub max_pending: usize,
    /// Deterministic fault-injection plan for chaos testing (see *Fault
    /// injection* in the [module docs](self)). `None` — the production
    /// default — injects nothing.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Slow-request threshold: a served request line whose wall latency
    /// meets or exceeds it emits a full trace JSONL record (the request-log
    /// fields plus `"phases"` and `"spans"`). `None` disables the slow log.
    pub slow_log: Option<Duration>,
    /// Where slow-request records are appended. With [`Self::slow_log`]
    /// set and no path, records go to stderr.
    pub slow_log_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    /// Four workers, a 1024-result cache over a default-sized registry, no
    /// expiry; 30-second peer deadlines, unlimited requests per
    /// connection, 64 KiB line cap, 5-second shutdown drain, no log; a
    /// 64-connection pending queue, no fault injection.
    fn default() -> Self {
        Self {
            threads: 4,
            cache_capacity: 1024,
            registry_capacity: ContextRegistry::DEFAULT_CAPACITY,
            ttl: None,
            idle_timeout: Some(Duration::from_secs(30)),
            max_requests: None,
            max_line_bytes: 64 * 1024,
            drain: Duration::from_secs(5),
            log_path: None,
            max_pending: 64,
            fault_plan: None,
            slow_log: None,
            slow_log_path: None,
        }
    }
}

/// Request-kind labels, indexed like [`Shared::latency`]'s outer axis.
const KIND_LABELS: [&str; 3] = ["schedule", "sweep", "bounds"];

/// Cache-disposition labels, indexed like [`Shared::latency`]'s inner
/// axis (matching [`kind_and_cache_indices`]).
const CACHE_LABELS: [&str; 4] = ["hit", "miss", "coalesced", "uncached"];

/// Maps an op and a disposition onto [`Shared::latency`] indices.
fn kind_and_cache_indices(op: &EngineOp, disposition: CacheDisposition) -> (usize, usize) {
    let kind = match op {
        EngineOp::Schedule { .. } => 0,
        EngineOp::Sweep { .. } => 1,
        EngineOp::Bounds { .. } => 2,
    };
    let cache = match disposition {
        CacheDisposition::Hit => 0,
        CacheDisposition::Miss => 1,
        CacheDisposition::Coalesced => 2,
        CacheDisposition::Uncached => 3,
    };
    (kind, cache)
}

/// Request/response traffic counters, exported through `/metrics`.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    http_requests: AtomicU64,
    schedule_requests: AtomicU64,
    sweep_requests: AtomicU64,
    bounds_requests: AtomicU64,
    parse_errors: AtomicU64,
    responses_ok: AtomicU64,
    responses_err: AtomicU64,
    /// Connections reaped by the idle (read/write) deadline.
    timeouts: AtomicU64,
    /// Request lines that blew the byte cap (connection closed).
    oversized_lines: AtomicU64,
    /// Keep-alive connections closed by the per-connection request cap.
    request_cap_closes: AtomicU64,
    /// Connections shed by admission control (queue full).
    sheds: AtomicU64,
    /// Worker threads that died to a panic and were respawned.
    worker_panics: AtomicU64,
}

/// The daemon's SOC resolver: every benchmark model, resolved once at
/// bind time into an immutable map. The request path does a read-only
/// lookup — no lock, no contention, nothing for a panic to poison.
pub(crate) struct BenchmarkCatalog {
    socs: std::collections::HashMap<&'static str, Arc<Soc>>,
}

impl BenchmarkCatalog {
    pub(crate) fn new() -> Self {
        Self {
            socs: soctam_core::soc::benchmarks::NAMES
                .iter()
                .filter_map(|name| {
                    soctam_core::soc::benchmarks::by_name(name).map(|soc| (*name, Arc::new(soc)))
                })
                .collect(),
        }
    }

    /// Resolves a benchmark name — never a filesystem path: remote peers
    /// must not be able to make the daemon read paths.
    pub(crate) fn resolve(&self, name: &str) -> Result<Arc<Soc>, String> {
        self.socs.get(name).cloned().ok_or_else(|| {
            format!(
                "unknown SOC `{name}` (the server resolves benchmark names only: {})",
                soctam_core::soc::benchmarks::NAMES.join(", ")
            )
        })
    }
}

/// One registered connection: the severing handle plus the busy flag the
/// worker raises while a request is in flight (read but not yet answered),
/// so shutdown can distinguish "blocked waiting for a peer" (sever now)
/// from "solving/flushing" (drain first).
struct ActiveConn {
    stream: TcpStream,
    busy: Arc<AtomicBool>,
}

/// Everything a worker thread needs to serve connections.
struct Shared {
    engine: Engine,
    cfg: ServerConfig,
    counters: Counters,
    catalog: BenchmarkCatalog,
    started: Instant,
    shutdown: AtomicBool,
    /// Handles on every connection currently being served, so shutdown
    /// can sever them instead of waiting for idle peers to hang up.
    active: Mutex<std::collections::HashMap<u64, ActiveConn>>,
    next_conn_id: AtomicU64,
    /// The JSONL request log, when configured.
    log: Option<Mutex<std::fs::File>>,
    /// The slow-request trace log file, when a path is configured
    /// (threshold set with no path falls back to stderr).
    slow_log: Option<Mutex<std::fs::File>>,
    /// Request-latency histograms: kind ([`KIND_LABELS`]) × cache
    /// disposition ([`CACHE_LABELS`]). Only lines that reached the engine
    /// are recorded — parse errors have no kind or disposition.
    latency: [[obs::Histogram; CACHE_LABELS.len()]; KIND_LABELS.len()],
    /// Cumulative exclusive per-phase time in microseconds, indexed like
    /// [`obs::Phase::ALL`].
    phase_micros: [AtomicU64; obs::Phase::ALL.len()],
    /// Accepted connections sitting in the bounded queue, not yet picked
    /// up by a worker. Incremented before the enqueue attempt and backed
    /// out on a failed one, so the gauge never under-counts; `/healthz`
    /// reports saturation when it reaches `max_pending`.
    queue_depth: AtomicU64,
    /// Live pool workers (a gauge: respawns keep it at `cfg.threads`).
    worker_threads: AtomicU64,
    /// Short-lived threads currently writing shed responses, capped so a
    /// connection flood cannot mint unbounded threads.
    shed_threads: AtomicU64,
    /// Join handles of respawned workers (the original handle died with
    /// the panicking thread); drained by [`Server::drop`].
    respawned: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Registers a connection as active, returning its id and busy flag (a
    /// clone of the stream is kept so shutdown can `Shutdown::Both` it).
    fn register(&self, stream: &TcpStream) -> Option<(u64, Arc<AtomicBool>)> {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let stream = stream.try_clone().ok()?;
        let busy = Arc::new(AtomicBool::new(false));
        lock_unpoisoned(&self.active).insert(
            id,
            ActiveConn {
                stream,
                busy: Arc::clone(&busy),
            },
        );
        Some((id, busy))
    }

    fn deregister(&self, id: u64) {
        lock_unpoisoned(&self.active).remove(&id);
    }

    /// Severs connections: all of them, or only those with no request in
    /// flight. Blocked worker reads observe EOF, so a dropped server never
    /// waits on an idle peer.
    fn sever(&self, idle_only: bool) {
        let active = lock_unpoisoned(&self.active);
        for conn in active.values() {
            if !idle_only || !conn.busy.load(Ordering::SeqCst) {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Whether any registered connection has a request in flight.
    fn any_busy(&self) -> bool {
        lock_unpoisoned(&self.active)
            .values()
            .any(|c| c.busy.load(Ordering::SeqCst))
    }

    /// Whether the pending queue is saturated (admission control is
    /// shedding and `/healthz` should degrade).
    fn saturated(&self) -> bool {
        self.queue_depth.load(Ordering::SeqCst) >= self.cfg.max_pending as u64
    }

    /// Appends one JSONL record to the request log, if configured. The
    /// `request` field is omitted when `request` is `None` (oversized
    /// lines never parsed into a request), which also keeps such records
    /// out of replay inputs. `trace` adds a compact `"phases"` object of
    /// the non-zero exclusive phase micros.
    fn log_request(
        &self,
        peer: &str,
        request: Option<&str>,
        outcome: &str,
        cache: &str,
        latency: Duration,
        trace: Option<&obs::TraceTree>,
    ) {
        let Some(log) = &self.log else { return };
        let line = request_record(peer, request, outcome, cache, latency, trace, false);
        let mut file = lock_unpoisoned(log);
        let _ = file.write_all(line.as_bytes());
    }

    /// Folds one served line into the latency histograms and the
    /// cumulative phase counters, and emits a slow-log record when the
    /// wall latency meets the configured threshold.
    fn observe_request(&self, peer: &str, request: &str, served: &ServedLine, latency: Duration) {
        if let Some((kind, cache)) = served.indices {
            self.latency[kind][cache].record(latency);
        }
        if let Some(trace) = &served.trace {
            for (i, (_, micros)) in trace.phase_micros().iter().enumerate() {
                if *micros > 0 {
                    self.phase_micros[i].fetch_add(*micros, Ordering::Relaxed);
                }
            }
        }
        let Some(threshold) = self.cfg.slow_log else {
            return;
        };
        if latency < threshold {
            return;
        }
        let line = request_record(
            peer,
            Some(request),
            served.outcome,
            served.cache,
            latency,
            served.trace.as_ref(),
            true,
        );
        match &self.slow_log {
            Some(file) => {
                let mut file = lock_unpoisoned(file);
                let _ = file.write_all(line.as_bytes());
            }
            None => eprint!("{line}"),
        }
    }
}

/// Renders one request-log JSONL record. `full` additionally embeds the
/// span tree — the slow-log shape; the regular log keeps only the compact
/// non-zero `"phases"` object.
fn request_record(
    peer: &str,
    request: Option<&str>,
    outcome: &str,
    cache: &str,
    latency: Duration,
    trace: Option<&obs::TraceTree>,
    full: bool,
) -> String {
    let ts_micros = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_micros());
    let request_field = request.map_or(String::new(), |r| {
        format!("\"request\": \"{}\", ", protocol::json_escape(r))
    });
    let trace_fields = trace.map_or(String::new(), |t| {
        let mut fields = format!(", \"phases\": {}", t.phases_json(false));
        if full {
            let _ = write!(
                fields,
                ", \"trace_total_micros\": {}, \"spans\": {}",
                t.total_micros,
                t.spans_json()
            );
        }
        fields
    });
    format!(
        "{{\"ts_micros\": {ts_micros}, \"peer\": \"{}\", {request_field}\
         \"outcome\": \"{outcome}\", \"cache\": \"{cache}\", \
         \"latency_micros\": {}{trace_fields}}}\n",
        protocol::json_escape(peer),
        latency.as_micros(),
    )
}

/// Summary of a cache-warming pass ([`Server::warm_from_text`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmReport {
    /// Replayable request lines found in the input.
    pub requests: usize,
    /// Requests solved (or already cached) successfully.
    pub ok: usize,
    /// Requests the engine rejected (infeasible configs are reported, not
    /// fatal — the daemon still starts).
    pub failed: usize,
    /// Lines that did not parse as requests (e.g. a log recorded against a
    /// benchmark set this daemon does not serve).
    pub skipped: usize,
}

/// A running serving daemon: a TCP acceptor plus a pool of connection
/// workers over one cached [`Engine`]. Dropping (or calling
/// [`Server::shutdown`]) stops accepting, drains in-flight responses
/// (severing idle peers immediately), and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:3777"`, or port 0 for an ephemeral
    /// port) and starts the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …) and
    /// request-log open failures.
    pub fn bind(addr: impl ToSocketAddrs, mut cfg: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        cfg.max_line_bytes = cfg.max_line_bytes.max(64);
        cfg.max_pending = cfg.max_pending.max(1);

        let mut registry = ContextRegistry::new(
            ContextRegistry::DEFAULT_SHARDS,
            cfg.registry_capacity.max(1),
        );
        if let Some(ttl) = cfg.ttl {
            registry = registry.with_ttl(ttl);
        }
        let mut engine = Engine::with_registry(Arc::new(registry))
            .with_solution_cache(cfg.cache_capacity, cfg.ttl);
        if let Some(plan) = &cfg.fault_plan {
            engine = engine.with_fault_plan(Arc::clone(plan));
        }

        let log = match &cfg.log_path {
            None => None,
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
        };
        let slow_log = match &cfg.slow_log_path {
            None => None,
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
        };

        let shared = Arc::new(Shared {
            engine,
            cfg,
            counters: Counters::default(),
            catalog: BenchmarkCatalog::new(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            active: Mutex::new(std::collections::HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            log,
            slow_log,
            latency: std::array::from_fn(|_| std::array::from_fn(|_| obs::Histogram::new())),
            phase_micros: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_depth: AtomicU64::new(0),
            worker_threads: AtomicU64::new(0),
            shed_threads: AtomicU64::new(0),
            respawned: Mutex::new(Vec::new()),
        });

        // The *bounded* connection queue: admission control. `try_send`
        // either queues (at most `max_pending` waiting) or fails
        // immediately, and a failed enqueue becomes a shed, not a stall.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(shared.cfg.max_pending);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.cfg.threads.max(1))
            .map(|_| spawn_worker(&shared, &rx))
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break; // tx drops here; workers drain and exit
                    }
                    if let Ok(stream) = stream {
                        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                        // Raise the gauge *before* the enqueue attempt
                        // (backing out on failure): a worker's decrement
                        // can then never race it below the true depth.
                        shared.queue_depth.fetch_add(1, Ordering::SeqCst);
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            Err(mpsc::TrySendError::Full(stream)) => {
                                shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                                shed(&shared, stream);
                            }
                            Err(mpsc::TrySendError::Disconnected(_)) => {
                                shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                }
            })
        };

        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address the daemon is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine serving this daemon's requests (for inspecting cache and
    /// registry stats from tests and benchmarks).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// The current Prometheus text exposition, exactly as `GET /metrics`
    /// returns it.
    pub fn metrics(&self) -> String {
        metrics_text(&self.shared)
    }

    /// A handle that can render this daemon's metrics even after the
    /// daemon has shut down — the final scrape a supervisor takes to
    /// verify gauges (queue depth, worker threads) drained to zero.
    #[must_use]
    pub fn metrics_probe(&self) -> MetricsProbe {
        MetricsProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Pre-solves every replayable request in `text` — a plain request
    /// file or a saved JSONL request log
    /// ([`soctam_core::protocol::replay_lines`]) — through the daemon's
    /// own engine and resolver, so the solution cache starts hot before
    /// real traffic arrives. Lines that fail to parse are skipped, not
    /// fatal: a warming input must never keep the daemon from starting.
    pub fn warm_from_text(&self, text: &str) -> WarmReport {
        let lines = protocol::replay_lines(text);
        let mut report = WarmReport {
            requests: lines.len(),
            ..WarmReport::default()
        };
        for line in &lines {
            let parsed =
                protocol::parse_request(line, &mut |name: &str| self.shared.catalog.resolve(name));
            match parsed {
                Err(_) => report.skipped += 1,
                Ok(req) => match self.shared.engine.serve_one(&req) {
                    Ok(_) => report.ok += 1,
                    Err(_) => report.failed += 1,
                },
            }
        }
        report
    }

    /// Stops accepting, drains in-flight responses, and joins every
    /// thread. Equivalent to dropping the server, but explicit at call
    /// sites that care about ordering.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Blocks until the daemon stops accepting (i.e. forever, for a
    /// daemon only a signal will stop) — the foreground mode `soctam
    /// serve` uses.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock `accept` so the acceptor observes the flag. The dummy
        // connection, if it wins the race into the queue, reads EOF and
        // costs a worker nothing.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Graceful drain: sever idle connections immediately (their
        // workers are blocked waiting on a peer, with nothing to flush),
        // then give connections with a request in flight up to the drain
        // window to finish solving and flush before severing the rest.
        self.shared.sever(true);
        let deadline = Instant::now() + self.shared.cfg.drain;
        while self.shared.any_busy() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shared.sever(false);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers respawned after a panic are tracked in `Shared` (the
        // original handle died with the panicking thread); a respawn can
        // itself panic and respawn, so drain until the list stays empty.
        loop {
            let respawned: Vec<_> = lock_unpoisoned(&self.shared.respawned).drain(..).collect();
            if respawned.is_empty() {
                break;
            }
            for worker in respawned {
                let _ = worker.join();
            }
        }
        // Every worker has exited and the queue's sender is gone: any
        // residual depth is connections that died queued — e.g. the last
        // worker left through a panic (no respawn at shutdown), never
        // reaching its disconnected-`recv` drain. Zero it so a
        // post-shutdown scrape ([`MetricsProbe`]) reads a clean gauge.
        self.shared.queue_depth.store(0, Ordering::SeqCst);
    }
}

/// A scrape handle detached from the [`Server`]'s lifetime (see
/// [`Server::metrics_probe`]): it holds the shared state alive, so the
/// exposition stays renderable across — and after — shutdown.
#[derive(Clone)]
pub struct MetricsProbe {
    shared: Arc<Shared>,
}

impl MetricsProbe {
    /// Renders the Prometheus text exposition from the daemon's current
    /// (or final, post-shutdown) counter state.
    #[must_use]
    pub fn render(&self) -> String {
        metrics_text(&self.shared)
    }
}

impl std::fmt::Debug for MetricsProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsProbe").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

/// Spawns one pool worker: a loop taking connections off the bounded
/// queue, guarded so a panic in a connection handler costs the daemon one
/// request, not one worker.
fn spawn_worker(
    shared: &Arc<Shared>,
    rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let rx = Arc::clone(rx);
    shared.worker_threads.fetch_add(1, Ordering::SeqCst);
    std::thread::spawn(move || {
        let _guard = RespawnGuard {
            shared: Arc::clone(&shared),
            rx: Arc::clone(&rx),
        };
        loop {
            // Take the next connection under the lock, serve it outside:
            // peers queue behind `recv`, not behind a long-running
            // request on another worker.
            let stream = lock_unpoisoned(&rx).recv();
            match stream {
                Ok(stream) => {
                    shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    serve_connection(&shared, stream);
                }
                Err(_) => {
                    // Acceptor gone: shutdown. The channel is empty (a
                    // disconnected `recv` drains before erroring) and its
                    // sender is dropped, so whatever the gauge still
                    // counts are queued connections discarded unserved —
                    // zero it, or the final `/metrics` scrape reports
                    // phantom depth forever.
                    shared.queue_depth.store(0, Ordering::SeqCst);
                    break;
                }
            }
        }
    })
}

/// Keeps the worker pool at strength: if a worker thread unwinds out of
/// its loop (a connection handler panicked — e.g. an injected `io:panic`
/// fault), the guard's drop respawns a replacement and counts the
/// recovery. A normal shutdown exit respawns nothing.
struct RespawnGuard {
    shared: Arc<Shared>,
    rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        self.shared.worker_threads.fetch_sub(1, Ordering::SeqCst);
        if std::thread::panicking() && !self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared
                .counters
                .worker_panics
                .fetch_add(1, Ordering::Relaxed);
            let replacement = spawn_worker(&self.shared, &self.rx);
            lock_unpoisoned(&self.shared.respawned).push(replacement);
        }
    }
}

/// Most shed responses in flight at once. Beyond this, shed connections
/// are dropped without a reply: the courtesy write must never become its
/// own resource exhaustion under a connection flood.
pub(crate) const MAX_SHED_THREADS: u64 = 32;

/// How long a shed-response thread will wait on the peer. Sheds happen
/// when the daemon is drowning; a slow peer gets cut off, not waited for.
pub(crate) const SHED_GRACE: Duration = Duration::from_secs(2);

/// Sheds one connection the bounded queue refused: counts it and answers
/// on a short-lived thread (the acceptor must never block on peer I/O),
/// with a structured busy line for protocol peers or `503` +
/// `Retry-After` for HTTP peers.
fn shed(shared: &Arc<Shared>, stream: TcpStream) {
    shared.counters.sheds.fetch_add(1, Ordering::Relaxed);
    if shared.shed_threads.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        shared.shed_threads.fetch_sub(1, Ordering::SeqCst);
        return; // flood: drop without the courtesy reply
    }
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        write_shed_response(&shared, stream);
        shared.shed_threads.fetch_sub(1, Ordering::SeqCst);
    });
}

/// Reads just the first request line (briefly — see [`SHED_GRACE`]) to
/// tell HTTP from wire-protocol peers, answers accordingly, and closes.
fn write_shed_response(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SHED_GRACE));
    let _ = stream.set_write_timeout(Some(SHED_GRACE));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf = Vec::new();
    let first_line = match read_bounded_line(&mut reader, &mut buf, shared.cfg.max_line_bytes) {
        LineRead::Line => String::from_utf8_lossy(&buf).trim().to_owned(),
        _ => return, // peer hung up or stalled: nothing owed
    };
    let response = if first_line.starts_with("GET ") || first_line.starts_with("HEAD ") {
        let body = "busy: workers and the pending queue are full; retry with backoff\n";
        format!(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain; \
             charset=utf-8\r\nContent-Length: {}\r\nRetry-After: 1\r\n\
             Connection: close\r\n\r\n{}",
            body.len(),
            if first_line.starts_with("HEAD ") {
                ""
            } else {
                body
            }
        )
    } else {
        format!(
            "{{\"ok\": false, \"busy\": true, \"transient\": true, \"error\": \
             \"server at capacity ({} connections pending); retry with backoff\"}}\n",
            shared.cfg.max_pending
        )
    };
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
}

/// Outcome of one bounded line read.
pub(crate) enum LineRead {
    /// A complete line (or the final, newline-less line before EOF) is in
    /// the buffer.
    Line,
    /// The byte cap was hit before a newline arrived.
    Oversized,
    /// The peer hung up cleanly.
    Eof,
    /// The read deadline elapsed (`WouldBlock`/`TimedOut`).
    TimedOut,
    /// Any other transport failure.
    Failed,
}

/// Reads one `\n`-terminated line into `buf` (cleared first), never
/// buffering more than `max + 1` bytes of it — the bounded read that keeps
/// a newline-free byte stream from growing daemon memory without limit.
pub(crate) fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> LineRead {
    buf.clear();
    let mut bounded = reader.by_ref().take(max as u64 + 1);
    match bounded.read_until(b'\n', buf) {
        Ok(0) => LineRead::Eof,
        Ok(_) if buf.last() == Some(&b'\n') || buf.len() <= max => LineRead::Line,
        Ok(_) => LineRead::Oversized,
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            LineRead::TimedOut
        }
        Err(_) => LineRead::Failed,
    }
}

/// Serves one accepted connection to completion: an HTTP GET gets one
/// response and a close; anything else is a stream of protocol request
/// lines, each answered with one JSON line.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(shared.cfg.idle_timeout);
    let _ = stream.set_write_timeout(shared.cfg.idle_timeout);
    let Some((conn_id, busy)) = shared.register(&stream) else {
        return;
    };
    // Deregister on drop, not on fall-through: a panicking handler (e.g.
    // an injected `io:panic` fault) must not leak its entry in the
    // active-connection table — shutdown would wait a full drain window
    // on a connection no worker is serving.
    struct Deregister<'a>(&'a Shared, u64);
    impl Drop for Deregister<'_> {
        fn drop(&mut self) {
            self.0.deregister(self.1);
        }
    }
    let _deregister = Deregister(shared, conn_id);
    serve_registered_connection(shared, stream, &busy);
}

/// The connection loop proper (split out so registration is impossible to
/// leak past an early return).
fn serve_registered_connection(shared: &Shared, stream: TcpStream, busy: &AtomicBool) {
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_owned(), |a| a.to_string());
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut first = true;
    let mut served: u64 = 0;
    let mut buf = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // draining: no new request is read
        }
        match read_bounded_line(&mut reader, &mut buf, shared.cfg.max_line_bytes) {
            LineRead::Eof | LineRead::Failed => return,
            LineRead::TimedOut => {
                shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                return; // idle (or unwriteable) peer reaped
            }
            LineRead::Oversized => {
                busy.store(true, Ordering::SeqCst);
                shared
                    .counters
                    .oversized_lines
                    .fetch_add(1, Ordering::Relaxed);
                shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .responses_err
                    .fetch_add(1, Ordering::Relaxed);
                let response = protocol::render_parse_error(&format!(
                    "request line exceeds the {}-byte cap; closing connection",
                    shared.cfg.max_line_bytes
                ));
                shared.log_request(&peer, None, "oversized", "none", Duration::ZERO, None);
                let _ = writer.write_all(response.as_bytes());
                let _ = writer.write_all(b"\n");
                let _ = writer.flush();
                // Discard (bounded, fixed-buffer — memory never grows) what
                // remains of the over-long line: closing with unread data
                // would RST the verdict out from under the peer.
                let _ = io::copy(&mut reader.by_ref().take(1 << 20), &mut io::sink());
                busy.store(false, Ordering::SeqCst);
                return; // the over-long line is never buffered, only drained
            }
            LineRead::Line => {}
        }
        let line = String::from_utf8_lossy(&buf);
        if first && (line.starts_with("GET ") || line.starts_with("HEAD ")) {
            shared
                .counters
                .http_requests
                .fetch_add(1, Ordering::Relaxed);
            busy.store(true, Ordering::SeqCst);
            serve_http(shared, &mut reader, &mut writer, line.trim());
            busy.store(false, Ordering::SeqCst);
            return; // Connection: close
        }
        first = false;
        let request = line.trim();
        if request.is_empty() || request.starts_with('#') {
            continue; // same skip rule as a batch file
        }
        // `io`-site fault injection fires once per protocol request line:
        // latency stalls compose, then `error` severs the connection (a
        // dead transport) and `panic` kills this worker mid-request (the
        // respawn guard recovers the pool).
        if let Some(plan) = &shared.cfg.fault_plan {
            let mut severed = false;
            for action in plan.fire(FaultSite::Io) {
                match action {
                    FaultAction::Latency(d) => std::thread::sleep(d),
                    FaultAction::Error => {
                        severed = true;
                        break;
                    }
                    FaultAction::Panic => panic!("injected fault: io panic"),
                }
            }
            if severed {
                return;
            }
        }
        // Busy from "request read" to "response flushed": shutdown's
        // drain waits for this window instead of severing mid-solve.
        busy.store(true, Ordering::SeqCst);
        let request = request.to_owned();
        let t0 = Instant::now();
        let line = serve_request_line(shared, &request);
        let latency = t0.elapsed();
        shared.observe_request(&peer, &request, &line, latency);
        // Log before the response flushes: once the peer reads its reply,
        // the record is already durable.
        shared.log_request(
            &peer,
            Some(&request),
            line.outcome,
            line.cache,
            latency,
            line.trace.as_ref(),
        );
        let write_ok = writer.write_all(line.response.as_bytes()).is_ok()
            && writer.write_all(b"\n").is_ok()
            && writer.flush().is_ok();
        busy.store(false, Ordering::SeqCst);
        if !write_ok {
            return;
        }
        served += 1;
        if shared.cfg.max_requests.is_some_and(|cap| served >= cap) {
            shared
                .counters
                .request_cap_closes
                .fetch_add(1, Ordering::Relaxed);
            return; // cap'th response flushed; keep-alive ends here
        }
    }
}

/// One served protocol request line: the JSON response object (without
/// the trailing newline) plus everything the connection loop folds into
/// the request log, the latency histograms, and the slow log.
struct ServedLine {
    response: String,
    outcome: &'static str,
    cache: &'static str,
    /// `(kind, cache)` histogram indices; `None` for lines that never
    /// reached the engine (parse errors have no kind or disposition).
    indices: Option<(usize, usize)>,
    /// The request's phase trace. Present for every served line — the
    /// recorder is armed unconditionally because an unarmed span is
    /// nearly free but a missing trace would blind the phase counters.
    trace: Option<obs::TraceTree>,
}

/// Snapshot of the process-wide solver counters, for the `--trace`
/// response's deltas.
#[derive(Clone, Copy)]
struct SolverCounters {
    menu_builds: u64,
    menu_derives: u64,
    constraint_compiles: u64,
    context_compiles: u64,
    schedule_runs: u64,
}

impl SolverCounters {
    fn now() -> Self {
        Self {
            menu_builds: instrument::menu_builds(),
            menu_derives: instrument::menu_derives(),
            constraint_compiles: instrument::constraint_compiles(),
            context_compiles: instrument::context_compiles(),
            schedule_runs: instrument::schedule_runs(),
        }
    }

    /// Renders `self - before` as a JSON object. Process counters, not
    /// request ones: concurrent traffic can inflate the deltas.
    fn delta_json(&self, before: &Self) -> String {
        format!(
            "{{\"menu_builds\": {}, \"menu_derives\": {}, \
             \"constraint_compiles\": {}, \"context_compiles\": {}, \
             \"schedule_runs\": {}}}",
            self.menu_builds - before.menu_builds,
            self.menu_derives - before.menu_derives,
            self.constraint_compiles - before.constraint_compiles,
            self.context_compiles - before.context_compiles,
            self.schedule_runs - before.schedule_runs,
        )
    }
}

/// Parses and serves one protocol request line under an armed span
/// recorder. For a `--trace` request the response gains a `"trace"`
/// member: total and per-phase exclusive micros (zeros explicit, so a
/// warm request visibly reports `"context_compile": 0`), the span tree,
/// the cache disposition, and the solver-counter deltas.
fn serve_request_line(shared: &Shared, request: &str) -> ServedLine {
    obs::trace_begin();
    let parsed = {
        let _span = obs::span(obs::Phase::Resolve);
        protocol::parse_request(request, &mut |name: &str| shared.catalog.resolve(name))
    };
    match parsed {
        Err(e) => {
            shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .responses_err
                .fetch_add(1, Ordering::Relaxed);
            ServedLine {
                response: protocol::render_parse_error(&e),
                outcome: "parse_error",
                cache: "none",
                indices: None,
                trace: obs::trace_end(),
            }
        }
        Ok(req) => {
            let kind_counter = match &req.op {
                EngineOp::Schedule { .. } => &shared.counters.schedule_requests,
                EngineOp::Sweep { .. } => &shared.counters.sweep_requests,
                EngineOp::Bounds { .. } => &shared.counters.bounds_requests,
            };
            kind_counter.fetch_add(1, Ordering::Relaxed);
            let before = req.trace.then(SolverCounters::now);
            let (result, disposition) = shared.engine.serve_one_traced(&req);
            let (outcome_counter, outcome) = if result.is_ok() {
                (&shared.counters.responses_ok, "ok")
            } else {
                (&shared.counters.responses_err, "error")
            };
            outcome_counter.fetch_add(1, Ordering::Relaxed);
            let cache = disposition.label();
            let mut response = {
                let _span = obs::span(obs::Phase::Render);
                protocol::render_result(&req, &result)
            };
            let trace = obs::trace_end();
            if let (Some(before), Some(tree)) = (before, trace.as_ref()) {
                if response.ends_with('}') {
                    response.pop();
                    let _ = write!(
                        response,
                        ", \"trace\": {{\"total_micros\": {}, \"cache\": \"{cache}\", \
                         \"phases\": {}, \"spans\": {}, \"counters\": {}}}}}",
                        tree.total_micros,
                        tree.phases_json(true),
                        tree.spans_json(),
                        SolverCounters::now().delta_json(&before),
                    );
                }
            }
            ServedLine {
                response,
                outcome,
                cache,
                indices: Some(kind_and_cache_indices(&req.op, disposition)),
                trace,
            }
        }
    }
}

/// Most header lines one HTTP request may carry before the daemon stops
/// reading and answers 431 — with the per-line byte cap, this bounds the
/// bytes a header block can make the daemon consume.
const MAX_HTTP_HEADER_LINES: usize = 128;

/// Drains an HTTP request's header block (the surface is GET/HEAD-only,
/// so no body follows) under the per-line byte cap, returning whether
/// the block overflowed the caps — in which case the caller answers 431.
/// Shared by the daemon's and the balancer's HTTP surfaces.
pub(crate) fn drain_http_headers(reader: &mut BufReader<TcpStream>, max_line: usize) -> bool {
    let mut header = Vec::new();
    let mut lines = 0;
    loop {
        if lines >= MAX_HTTP_HEADER_LINES {
            break true;
        }
        lines += 1;
        match read_bounded_line(reader, &mut header, max_line) {
            LineRead::Oversized => break true,
            LineRead::Line if !header.iter().all(|b| b.is_ascii_whitespace()) => {}
            _ => break false, // blank line, EOF, timeout, or failure
        }
    }
}

/// Renders one full HTTP/1.1 response (headers and, for GET, the body)
/// with the `Connection: close` discipline both daemons speak.
pub(crate) fn render_http_response(status: &str, body: &str, head_only: bool) -> String {
    // A HEAD response carries the headers a GET would (including the
    // body's Content-Length) but never the body itself (RFC 9110 §9.3.2).
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        if head_only { "" } else { body }
    )
}

/// Serves the minimal HTTP/1.1 GET surface: `/healthz`, `/metrics`, 404.
fn serve_http(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &str,
) {
    let header_overflow = drain_http_headers(reader, shared.cfg.max_line_bytes);
    let (status, body) = if header_overflow {
        (
            "431 Request Header Fields Too Large",
            "header block exceeds the configured cap\n".to_owned(),
        )
    } else {
        let path = request_line.split_whitespace().nth(1).unwrap_or("/");
        match path {
            // Load-aware health: a saturated instance reports 503 so load
            // balancers stop routing to it until the queue drains.
            "/healthz" if shared.saturated() => (
                "503 Service Unavailable",
                "saturated: the pending queue is full\n".to_owned(),
            ),
            "/healthz" => ("200 OK", "ok\n".to_owned()),
            "/metrics" => ("200 OK", metrics_text(shared)),
            _ => ("404 Not Found", "not found\n".to_owned()),
        }
    };
    let head_only = request_line.starts_with("HEAD ");
    let response = render_http_response(status, &body, head_only);
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
}

/// Renders the Prometheus text exposition of the daemon's counters. Every
/// metric family carries its `# TYPE` line (counter or gauge) so real
/// scrapers ingest the exposition, not just `grep`.
fn metrics_text(shared: &Shared) -> String {
    let c = &shared.counters;
    let registry = shared.engine.registry();
    let reg_stats = registry.stats();
    let sol_stats = shared.engine.solution_stats().unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE soctam_uptime_seconds gauge");
    let _ = writeln!(
        out,
        "soctam_uptime_seconds {}",
        shared.started.elapsed().as_secs_f64()
    );
    // One entry per metric *family*: (family name, type, samples), where a
    // sample is (label suffix, value). Most families have the single
    // unlabelled sample.
    type Samples = Vec<(&'static str, u64)>;
    let families: Vec<(&str, &str, Samples)> = vec![
        (
            "soctam_connections_total",
            "counter",
            vec![("", c.connections.load(Ordering::Relaxed))],
        ),
        (
            "soctam_http_requests_total",
            "counter",
            vec![("", c.http_requests.load(Ordering::Relaxed))],
        ),
        (
            "soctam_requests_total",
            "counter",
            vec![
                (
                    "{kind=\"schedule\"}",
                    c.schedule_requests.load(Ordering::Relaxed),
                ),
                ("{kind=\"sweep\"}", c.sweep_requests.load(Ordering::Relaxed)),
                (
                    "{kind=\"bounds\"}",
                    c.bounds_requests.load(Ordering::Relaxed),
                ),
            ],
        ),
        (
            "soctam_request_parse_errors_total",
            "counter",
            vec![("", c.parse_errors.load(Ordering::Relaxed))],
        ),
        (
            "soctam_responses_ok_total",
            "counter",
            vec![("", c.responses_ok.load(Ordering::Relaxed))],
        ),
        (
            "soctam_responses_err_total",
            "counter",
            vec![("", c.responses_err.load(Ordering::Relaxed))],
        ),
        (
            "soctam_connection_timeouts_total",
            "counter",
            vec![("", c.timeouts.load(Ordering::Relaxed))],
        ),
        (
            "soctam_request_line_oversized_total",
            "counter",
            vec![("", c.oversized_lines.load(Ordering::Relaxed))],
        ),
        (
            "soctam_request_cap_closes_total",
            "counter",
            vec![("", c.request_cap_closes.load(Ordering::Relaxed))],
        ),
        (
            "soctam_shed_total",
            "counter",
            vec![("", c.sheds.load(Ordering::Relaxed))],
        ),
        (
            "soctam_queue_depth",
            "gauge",
            vec![("", shared.queue_depth.load(Ordering::SeqCst))],
        ),
        (
            "soctam_queue_capacity",
            "gauge",
            vec![("", shared.cfg.max_pending as u64)],
        ),
        (
            "soctam_worker_threads",
            "gauge",
            vec![("", shared.worker_threads.load(Ordering::SeqCst))],
        ),
        (
            "soctam_worker_panics_total",
            "counter",
            vec![("", c.worker_panics.load(Ordering::Relaxed))],
        ),
        (
            "soctam_solver_panics_recovered_total",
            "counter",
            vec![("", shared.engine.recovered_panics())],
        ),
        (
            "soctam_solution_cache_panics_total",
            "counter",
            vec![("", sol_stats.panics)],
        ),
        (
            "soctam_context_registry_panics_total",
            "counter",
            vec![("", reg_stats.panics)],
        ),
        (
            "soctam_solution_cache_hits_total",
            "counter",
            vec![("", sol_stats.hits)],
        ),
        (
            "soctam_solution_cache_misses_total",
            "counter",
            vec![("", sol_stats.misses)],
        ),
        (
            "soctam_solution_cache_coalesced_total",
            "counter",
            vec![("", sol_stats.coalesced)],
        ),
        (
            "soctam_solution_cache_evictions_total",
            "counter",
            vec![("", sol_stats.evictions)],
        ),
        (
            "soctam_solution_cache_expiries_total",
            "counter",
            vec![("", sol_stats.expiries)],
        ),
        (
            "soctam_solution_cache_failures_total",
            "counter",
            vec![("", sol_stats.failures)],
        ),
        (
            "soctam_solution_cache_resident",
            "gauge",
            vec![("", shared.engine.solutions_len() as u64)],
        ),
        (
            "soctam_context_registry_hits_total",
            "counter",
            vec![("", reg_stats.hits)],
        ),
        (
            "soctam_context_registry_misses_total",
            "counter",
            vec![("", reg_stats.misses)],
        ),
        (
            "soctam_context_registry_evictions_total",
            "counter",
            vec![("", reg_stats.evictions)],
        ),
        (
            "soctam_context_registry_expiries_total",
            "counter",
            vec![("", reg_stats.expiries)],
        ),
        (
            "soctam_context_registry_resident",
            "gauge",
            vec![("", registry.len() as u64)],
        ),
        // Process-scoped (not per-server): the instrument counters cover
        // every engine in the process, and the name says so.
        (
            "soctam_process_schedule_runs_total",
            "counter",
            vec![("", instrument::schedule_runs())],
        ),
        (
            "soctam_process_context_compiles_total",
            "counter",
            vec![("", instrument::context_compiles())],
        ),
    ];
    for (name, kind, samples) in families {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, value) in samples {
            let _ = writeln!(out, "{name}{labels} {value}");
        }
    }
    let _ = writeln!(out, "# TYPE soctam_build_info gauge");
    let _ = writeln!(
        out,
        "soctam_build_info{{version=\"{}\"}} 1",
        env!("CARGO_PKG_VERSION")
    );
    // Cumulative exclusive time per phase, in seconds. Every phase is
    // rendered (zeros included) so a balancer roll-up sums a stable
    // series set.
    let _ = writeln!(out, "# TYPE soctam_phase_seconds_total counter");
    for (i, phase) in obs::Phase::ALL.iter().enumerate() {
        let micros = shared.phase_micros[i].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "soctam_phase_seconds_total{{phase=\"{}\"}} {:.6}",
            phase.label(),
            micros as f64 / 1e6
        );
    }
    // Request-latency histograms per kind × cache disposition. Only
    // populated cells render series (an exposition of 12 empty histograms
    // would drown the real ones), but the `# TYPE` header is
    // unconditional so scrapers and smoke tests can gate on the family.
    let _ = writeln!(out, "# TYPE soctam_request_latency_seconds histogram");
    for (k, kind) in KIND_LABELS.iter().enumerate() {
        for (c, cache) in CACHE_LABELS.iter().enumerate() {
            let snap = shared.latency[k][c].snapshot();
            if snap.count == 0 {
                continue;
            }
            snap.render_into(
                &mut out,
                "soctam_request_latency_seconds",
                &format!("kind=\"{kind}\",cache=\"{cache}\""),
            );
        }
    }
    // Fault-injection counts, one sample per armed spec. Only rendered
    // when a plan is armed: a production daemon's exposition carries no
    // chaos-harness rows.
    if let Some(plan) = &shared.cfg.fault_plan {
        let _ = writeln!(out, "# TYPE soctam_fault_injected_total counter");
        for (label, count) in plan.injected() {
            let _ = writeln!(
                out,
                "soctam_fault_injected_total{{fault=\"{label}\"}} {count}"
            );
        }
    }
    out
}
