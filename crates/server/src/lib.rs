//! # soctam-server
//!
//! The networked serving daemon over [`soctam_core::engine::Engine`]: a
//! std-only (no async runtime — the workspace vendors every dependency),
//! multi-threaded TCP listener that turns the DAC 2002 co-optimization
//! flow into a long-lived service.
//!
//! # Wire protocol
//!
//! A connection is a plain TCP byte stream of newline-delimited text.
//! Each request line uses the *same grammar as a `soctam batch` request
//! file* — both run through one parser,
//! [`soctam_core::protocol::parse_request`], so the file format and the
//! wire format can never drift apart:
//!
//! ```text
//! schedule <soc> --width W   [--power] [--no-preempt]
//! sweep    <soc> [--from A] [--to B]   [--power] [--no-preempt]
//! bounds   <soc> [--widths a,b,c]      [--power] [--no-preempt]
//! ```
//!
//! Blank lines and `#` comments are skipped, exactly as in a batch file.
//! `<soc>` must be a benchmark name (`d695`, `p22810`, `p34392`,
//! `p93791`): the daemon never reads filesystem paths on behalf of remote
//! peers. Every request line is answered with exactly one JSON object on
//! one line ([`soctam_core::protocol::render_result`]); a line that fails
//! to parse is answered with `{"ok": false, "error": "..."}` and the
//! connection stays usable. Responses are bit-identical to calling the
//! `Engine` directly — cached or not — which the loopback suite pins.
//!
//! # HTTP surface
//!
//! A connection whose first line is an HTTP/1.1 `GET` is served one
//! response and closed:
//!
//! * `GET /healthz` — `200 OK`, body `ok`;
//! * `GET /metrics` — `200 OK`, Prometheus text exposition of request,
//!   cache, registry, and solver counters;
//! * anything else — `404 Not Found`.
//!
//! # Caching
//!
//! The daemon layers a [`soctam_core::schedule::SolutionCache`] between the
//! listener and the engine, keyed by `(SOC content, width cap, power
//! budget, operation, scheduling mode, parameter grid)` — the
//! [`soctam_core::schedule::ContextRegistry`] key plus width, mode, and grid —
//! so a repeat request returns without invoking the solver, and
//! concurrent identical requests coalesce onto one solve. An optional TTL
//! bounds the staleness of both cached solutions and compiled contexts
//! ([`soctam_core::schedule::ContextRegistry::with_ttl`]).
//!
//! # Example
//!
//! ```
//! use soctam_server::{client, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let responses = client::roundtrip(addr, &["bounds d695 --widths 16,32"]).unwrap();
//! assert!(responses[0].contains("\"ok\": true"));
//! let (status, body) = client::http_get(addr, "/healthz").unwrap();
//! assert!(status.contains("200"));
//! assert_eq!(body, "ok\n");
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use soctam_core::engine::{Engine, EngineOp};
use soctam_core::protocol::{self, MemoResolver};
use soctam_core::schedule::{instrument, ContextRegistry};
use soctam_core::soc::Soc;

pub mod client;

/// Configuration of a serving daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections (each serves one connection at
    /// a time; clamped to at least 1).
    pub threads: usize,
    /// Total solution-cache capacity in results; 0 disables result
    /// caching (every request re-solves).
    pub cache_capacity: usize,
    /// Total context-registry capacity in compiled contexts.
    pub registry_capacity: usize,
    /// Optional time-to-live applied to both cached solutions and
    /// compiled contexts; `None` means entries never expire.
    pub ttl: Option<Duration>,
}

impl Default for ServerConfig {
    /// Four workers, a 1024-result cache over a default-sized registry,
    /// no expiry.
    fn default() -> Self {
        Self {
            threads: 4,
            cache_capacity: 1024,
            registry_capacity: ContextRegistry::DEFAULT_CAPACITY,
            ttl: None,
        }
    }
}

/// Request/response traffic counters, exported through `/metrics`.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    http_requests: AtomicU64,
    schedule_requests: AtomicU64,
    sweep_requests: AtomicU64,
    bounds_requests: AtomicU64,
    parse_errors: AtomicU64,
    responses_ok: AtomicU64,
    responses_err: AtomicU64,
}

/// The daemon's SOC resolver: the shared memoizing resolver over the
/// benchmark-only loader (a plain `fn` pointer, so the type is nameable).
type BenchmarkOnlyResolver = MemoResolver<fn(&str) -> Result<Soc, String>>;

/// Everything a worker thread needs to serve connections.
struct Shared {
    engine: Engine,
    counters: Counters,
    resolver: Mutex<BenchmarkOnlyResolver>,
    started: Instant,
    shutdown: AtomicBool,
    /// Handles on every connection currently being served, so shutdown
    /// can sever them instead of waiting for idle peers to hang up.
    active: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    /// Registers a connection as active, returning its id (a clone of the
    /// stream is kept so shutdown can `Shutdown::Both` it).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let clone = stream.try_clone().ok()?;
        self.active
            .lock()
            .expect("active-connection table poisoned")
            .insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.active
            .lock()
            .expect("active-connection table poisoned")
            .remove(&id);
    }

    /// Severs every active connection: blocked worker reads return EOF,
    /// so a dropped server never waits on an idle peer.
    fn sever_active(&self) {
        let active = self
            .active
            .lock()
            .expect("active-connection table poisoned");
        for stream in active.values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The loader behind the daemon's SOC resolver: benchmark names only,
/// never the filesystem (remote peers must not be able to make the
/// daemon read paths).
fn load_benchmark(name: &str) -> Result<Soc, String> {
    soctam_core::soc::benchmarks::by_name(name).ok_or_else(|| {
        format!(
            "unknown SOC `{name}` (the server resolves benchmark names only: {})",
            soctam_core::soc::benchmarks::NAMES.join(", ")
        )
    })
}

/// A running serving daemon: a TCP acceptor plus a pool of connection
/// workers over one cached [`Engine`]. Dropping (or calling
/// [`Server::shutdown`]) stops accepting, drains the workers, and joins
/// every thread.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:3777"`, or port 0 for an ephemeral
    /// port) and starts the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;

        let mut registry = ContextRegistry::new(
            ContextRegistry::DEFAULT_SHARDS,
            cfg.registry_capacity.max(1),
        );
        if let Some(ttl) = cfg.ttl {
            registry = registry.with_ttl(ttl);
        }
        let engine = Engine::with_registry(Arc::new(registry))
            .with_solution_cache(cfg.cache_capacity, cfg.ttl);

        let shared = Arc::new(Shared {
            engine,
            counters: Counters::default(),
            resolver: Mutex::new(MemoResolver::new(
                load_benchmark as fn(&str) -> Result<Soc, String>,
            )),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            active: Mutex::new(std::collections::HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Take the next connection under the lock, serve it
                    // outside: peers queue behind `recv`, not behind a
                    // long-running request on another worker.
                    let stream = rx.lock().expect("worker queue poisoned").recv();
                    match stream {
                        Ok(stream) => serve_connection(&shared, stream),
                        Err(_) => break, // acceptor gone: shutdown
                    }
                })
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break; // tx drops here; workers drain and exit
                    }
                    if let Ok(stream) = stream {
                        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
            })
        };

        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address the daemon is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine serving this daemon's requests (for inspecting cache and
    /// registry stats from tests and benchmarks).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// The current Prometheus text exposition, exactly as `GET /metrics`
    /// returns it.
    pub fn metrics(&self) -> String {
        metrics_text(&self.shared)
    }

    /// Stops accepting, drains in-flight connections, and joins every
    /// thread. Equivalent to dropping the server, but explicit at call
    /// sites that care about ordering.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Blocks until the daemon stops accepting (i.e. forever, for a
    /// daemon only a signal will stop) — the foreground mode `soctam
    /// serve` uses.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock `accept` so the acceptor observes the flag. The dummy
        // connection, if it wins the race into the queue, reads EOF and
        // costs a worker nothing.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Sever in-flight connections so workers blocked on an idle peer
        // observe EOF instead of waiting for the peer to hang up.
        self.shared.sever_active();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

/// Serves one accepted connection to completion: an HTTP GET gets one
/// response and a close; anything else is a stream of protocol request
/// lines, each answered with one JSON line.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Some(conn_id) = shared.register(&stream) else {
        return;
    };
    serve_registered_connection(shared, stream);
    shared.deregister(conn_id);
}

/// The connection loop proper (split out so registration is impossible to
/// leak past an early return).
fn serve_registered_connection(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut first = true;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF or broken peer
            Ok(_) => {}
        }
        if first && (line.starts_with("GET ") || line.starts_with("HEAD ")) {
            shared
                .counters
                .http_requests
                .fetch_add(1, Ordering::Relaxed);
            serve_http(shared, &mut reader, &mut writer, line.trim());
            return; // Connection: close
        }
        first = false;
        let request = line.trim();
        if request.is_empty() || request.starts_with('#') {
            continue; // same skip rule as a batch file
        }
        let response = serve_request_line(shared, request);
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            return;
        }
    }
}

/// Parses and serves one protocol request line, returning the JSON
/// response object (without the trailing newline).
fn serve_request_line(shared: &Shared, request: &str) -> String {
    let parsed = {
        let mut resolver = shared.resolver.lock().expect("resolver poisoned");
        protocol::parse_request(request, &mut *resolver)
    };
    match parsed {
        Err(e) => {
            shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .responses_err
                .fetch_add(1, Ordering::Relaxed);
            protocol::render_parse_error(&e)
        }
        Ok(req) => {
            let kind_counter = match &req.op {
                EngineOp::Schedule { .. } => &shared.counters.schedule_requests,
                EngineOp::Sweep { .. } => &shared.counters.sweep_requests,
                EngineOp::Bounds { .. } => &shared.counters.bounds_requests,
            };
            kind_counter.fetch_add(1, Ordering::Relaxed);
            let result = shared.engine.serve_one(&req);
            let outcome_counter = if result.is_ok() {
                &shared.counters.responses_ok
            } else {
                &shared.counters.responses_err
            };
            outcome_counter.fetch_add(1, Ordering::Relaxed);
            protocol::render_result(&req, &result)
        }
    }
}

/// Serves the minimal HTTP/1.1 GET surface: `/healthz`, `/metrics`, 404.
fn serve_http(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &str,
) {
    // Drain the header block; the surface is GET/HEAD-only, so no body
    // follows.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => {}
        }
    }
    let head_only = request_line.starts_with("HEAD ");
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/healthz" => ("200 OK", "ok\n".to_owned()),
        "/metrics" => ("200 OK", metrics_text(shared)),
        _ => ("404 Not Found", "not found\n".to_owned()),
    };
    // A HEAD response carries the headers a GET would (including the
    // body's Content-Length) but never the body itself (RFC 9110 §9.3.2).
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        if head_only { "" } else { body.as_str() }
    );
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
}

/// Renders the Prometheus text exposition of the daemon's counters.
fn metrics_text(shared: &Shared) -> String {
    let c = &shared.counters;
    let registry = shared.engine.registry();
    let reg_stats = registry.stats();
    let sol_stats = shared.engine.solution_stats().unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "soctam_uptime_seconds {}",
        shared.started.elapsed().as_secs_f64()
    );
    let rows: [(&str, u64); 22] = [
        (
            "soctam_connections_total",
            c.connections.load(Ordering::Relaxed),
        ),
        (
            "soctam_http_requests_total",
            c.http_requests.load(Ordering::Relaxed),
        ),
        (
            "soctam_requests_total{kind=\"schedule\"}",
            c.schedule_requests.load(Ordering::Relaxed),
        ),
        (
            "soctam_requests_total{kind=\"sweep\"}",
            c.sweep_requests.load(Ordering::Relaxed),
        ),
        (
            "soctam_requests_total{kind=\"bounds\"}",
            c.bounds_requests.load(Ordering::Relaxed),
        ),
        (
            "soctam_request_parse_errors_total",
            c.parse_errors.load(Ordering::Relaxed),
        ),
        (
            "soctam_responses_ok_total",
            c.responses_ok.load(Ordering::Relaxed),
        ),
        (
            "soctam_responses_err_total",
            c.responses_err.load(Ordering::Relaxed),
        ),
        ("soctam_solution_cache_hits_total", sol_stats.hits),
        ("soctam_solution_cache_misses_total", sol_stats.misses),
        ("soctam_solution_cache_coalesced_total", sol_stats.coalesced),
        ("soctam_solution_cache_evictions_total", sol_stats.evictions),
        ("soctam_solution_cache_expiries_total", sol_stats.expiries),
        ("soctam_solution_cache_failures_total", sol_stats.failures),
        (
            "soctam_solution_cache_resident",
            shared.engine.solutions_len() as u64,
        ),
        ("soctam_context_registry_hits_total", reg_stats.hits),
        ("soctam_context_registry_misses_total", reg_stats.misses),
        (
            "soctam_context_registry_evictions_total",
            reg_stats.evictions,
        ),
        ("soctam_context_registry_expiries_total", reg_stats.expiries),
        ("soctam_context_registry_resident", registry.len() as u64),
        // Process-scoped (not per-server): the instrument counters cover
        // every engine in the process, and the name says so.
        (
            "soctam_process_schedule_runs_total",
            instrument::schedule_runs(),
        ),
        (
            "soctam_process_context_compiles_total",
            instrument::context_compiles(),
        ),
    ];
    for (name, value) in rows {
        let _ = writeln!(out, "{name} {value}");
    }
    out
}
