//! Start a loopback daemon, talk to it over real TCP, and read its
//! metrics — the whole serving stack in one example.
//!
//! Run with: `cargo run -p soctam-server --example serve_loopback`

use soctam_server::{client, Server, ServerConfig};

fn main() -> std::io::Result<()> {
    // Port 0: the OS picks a free port; production deployments pass a
    // fixed address (`soctam serve --addr 0.0.0.0:3777`).
    let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
    let addr = server.local_addr();
    println!("daemon listening on {addr}");

    // One connection, several requests — the same lines a `soctam batch`
    // file would hold. The repeated schedule request is served from the
    // solution cache without re-running the solver.
    let requests = [
        "schedule d695 --width 16",
        "bounds p34392 --widths 16,24,32",
        "sweep d695 --from 15 --to 17",
        "schedule d695 --width 16", // repeat: cache hit
    ];
    for (request, response) in requests.iter().zip(client::roundtrip(addr, &requests)?) {
        println!("> {request}");
        println!("< {response}");
    }

    let (status, body) = client::http_get(addr, "/healthz")?;
    println!("GET /healthz -> {status}: {}", body.trim());

    let (_, metrics) = client::http_get(addr, "/metrics")?;
    for line in metrics.lines().filter(|l| {
        l.starts_with("soctam_requests_total") || l.starts_with("soctam_solution_cache_h")
    }) {
        println!("{line}");
    }

    let stats = server.engine().solution_stats().expect("cache enabled");
    println!(
        "solution cache: {} misses, {} hits (hit rate {:.2})",
        stats.misses,
        stats.hits,
        stats.hit_rate()
    );
    server.shutdown();
    Ok(())
}
