//! # soctam-sim
//!
//! Phase-accurate simulation of scan test application and tester memory —
//! the executable semantics behind the analytic models the rest of the
//! workspace relies on.
//!
//! The paper's framework stands on two closed-form models:
//!
//! * the **testing time** of a wrapped core on `w` TAM wires,
//!   `T = (1 + max(sᵢ, sₒ))·p + min(sᵢ, sₒ)`, and
//! * the **tester data volume** of a schedule, `V = W · T` (every TAM pin's
//!   vector memory holds one bit per cycle of the schedule).
//!
//! Closed forms are easy to get subtly wrong, so this crate *simulates*
//! instead of calculating: [`ScanTestSim`] steps a wrapped core through
//! its shift-in / capture / overlapped shift-out phases pattern by
//! pattern, and [`TesterSim`] replays a whole schedule against its wire
//! assignment, metering every bit each tester channel drives. Tests then
//! assert the simulations agree with the closed forms exactly.
//!
//! # Example
//!
//! ```
//! use soctam_sim::ScanTestSim;
//! use soctam_wrapper::{CoreTest, WrapperDesign};
//!
//! # fn main() -> Result<(), soctam_wrapper::WrapperError> {
//! let core = CoreTest::new(8, 4, 0, vec![30, 20, 10], 50)?;
//! let design = WrapperDesign::design(&core, 3)?;
//! let sim = ScanTestSim::new(&design).run();
//! // The simulation lands exactly on the analytic testing time.
//! assert_eq!(sim.cycles, design.test_time());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scan;
mod tester;

pub use scan::{ScanPhase, ScanTestSim, ScanTrace};
pub use tester::{CoreDelivery, TesterImage, TesterSim};
