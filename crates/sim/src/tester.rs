//! Tester-memory simulation of a full SOC schedule.

use soctam_schedule::Schedule;
use soctam_soc::{CoreIdx, Soc};
use soctam_tam::WireAssignment;
use soctam_wrapper::{RectangleSet, WrapperDesign};

/// Per-core delivery metering from a tester simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreDelivery {
    /// The core.
    pub core: CoreIdx,
    /// Cycles during which the tester drove this core's wires.
    pub cycles_driven: u64,
    /// Cycles the core's test actually needs at its scheduled width,
    /// including preemption penalties.
    pub cycles_needed: u64,
    /// Payload bits (stimulus + response) moved for this core.
    pub payload_bits: u64,
}

/// The tester's view of a finished schedule: per-channel memory depth and
/// the padding (don't-care bits) that idle wires cost.
#[derive(Debug, Clone, PartialEq)]
pub struct TesterImage {
    /// Vector memory depth every active channel must provision — the
    /// schedule makespan (channels cannot skip cycles).
    pub depth_per_pin: u64,
    /// Number of channels (the SOC TAM width).
    pub channels: u16,
    /// Total vector memory: `channels × depth` — the paper's `V = W·T`.
    pub total_bits: u64,
    /// Bits per channel actually carrying test data, indexed by wire id.
    pub payload_per_wire: Vec<u64>,
    /// Total padding bits (idle wire·cycles).
    pub padding_bits: u64,
    /// Per-core delivery metering.
    pub deliveries: Vec<CoreDelivery>,
}

impl TesterImage {
    /// Fraction of tester memory holding real test data.
    pub fn payload_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            return 0.0;
        }
        1.0 - self.padding_bits as f64 / self.total_bits as f64
    }
}

/// Replays a schedule against its wire assignment, metering every channel.
///
/// The simulation is slice-accurate: for each slice, the wires listed in
/// the assignment are driven for the slice's duration; all other cycles on
/// a channel are padding. The resulting [`TesterImage`] derives the
/// paper's `V = W·T` from first principles instead of assuming it.
#[derive(Debug)]
pub struct TesterSim<'a> {
    soc: &'a Soc,
    schedule: &'a Schedule,
    wires: &'a WireAssignment,
}

impl<'a> TesterSim<'a> {
    /// Prepares a simulation of `schedule` on the tester.
    pub fn new(soc: &'a Soc, schedule: &'a Schedule, wires: &'a WireAssignment) -> Self {
        Self {
            soc,
            schedule,
            wires,
        }
    }

    /// Runs the replay and returns the tester image.
    ///
    /// # Panics
    ///
    /// Panics if the wire assignment references wires outside the TAM; use
    /// [`WireAssignment::verify`] first for untrusted inputs.
    pub fn run(&self) -> TesterImage {
        let channels = self.schedule.tam_width();
        let depth = self.schedule.makespan();
        let mut payload_per_wire = vec![0u64; usize::from(channels)];
        let mut driven = vec![0u64; self.soc.len()];

        for assigned in self.wires.assignments() {
            let duration = assigned.slice.duration();
            for &wire in &assigned.wires {
                payload_per_wire[usize::from(wire)] += duration;
            }
            driven[assigned.slice.core] += duration;
        }

        let deliveries = (0..self.soc.len())
            .map(|core| {
                let slices = self.schedule.core_slices(core);
                let width = slices.first().map(|s| s.width).unwrap_or(0);
                let cycles_needed = if width == 0 {
                    0
                } else {
                    let rects = RectangleSet::build(self.soc.core(core).test(), width);
                    let preemptions = (slices.len() - 1) as u64;
                    rects.time_at(width) + preemptions * rects.rect_at(width).preemption_penalty()
                };
                // Payload: what the scan protocol actually moves, counted
                // by the phase-level simulator on the same design.
                let payload_bits = if width == 0 {
                    0
                } else {
                    let design = WrapperDesign::design(self.soc.core(core).test(), width)
                        .expect("schedule widths are valid");
                    let trace = crate::ScanTestSim::new(&design).run();
                    trace.bits_in + trace.bits_out
                };
                CoreDelivery {
                    core,
                    cycles_driven: driven[core],
                    cycles_needed,
                    payload_bits,
                }
            })
            .collect();

        let payload_total: u64 = payload_per_wire.iter().sum();
        let total_bits = u64::from(channels) * depth;
        TesterImage {
            depth_per_pin: depth,
            channels,
            total_bits,
            padding_bits: total_bits - payload_total,
            payload_per_wire,
            deliveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_schedule::{ScheduleBuilder, SchedulerConfig};
    use soctam_soc::{benchmarks, synth::SynthConfig};
    use soctam_volume::volume_of;

    fn image_for(soc: &Soc, w: u16) -> TesterImage {
        let schedule = ScheduleBuilder::new(soc, SchedulerConfig::new(w))
            .run()
            .unwrap();
        let wires = WireAssignment::assign(&schedule).unwrap();
        TesterSim::new(soc, &schedule, &wires).run()
    }

    #[test]
    fn total_bits_reproduce_volume_model() {
        let soc = benchmarks::d695();
        for w in [16u16, 32, 64] {
            let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(w))
                .run()
                .unwrap();
            let wires = WireAssignment::assign(&schedule).unwrap();
            let image = TesterSim::new(&soc, &schedule, &wires).run();
            assert_eq!(image.total_bits, volume_of(w, schedule.makespan()));
            assert_eq!(image.depth_per_pin, schedule.makespan());
        }
    }

    #[test]
    fn every_core_driven_exactly_as_needed() {
        let soc = benchmarks::d695();
        let image = image_for(&soc, 24);
        for d in &image.deliveries {
            assert_eq!(d.cycles_driven, d.cycles_needed, "core {}", d.core);
            assert!(d.payload_bits > 0);
        }
    }

    #[test]
    fn padding_complements_payload() {
        let soc = benchmarks::p22810();
        let image = image_for(&soc, 32);
        let payload: u64 = image.payload_per_wire.iter().sum();
        assert_eq!(payload + image.padding_bits, image.total_bits);
        let frac = image.payload_fraction();
        assert!(frac > 0.5 && frac <= 1.0, "fraction {frac}");
    }

    #[test]
    fn per_wire_payload_bounded_by_depth() {
        let soc = benchmarks::p93791();
        let image = image_for(&soc, 48);
        for (wire, &bits) in image.payload_per_wire.iter().enumerate() {
            assert!(bits <= image.depth_per_pin, "wire {wire}");
        }
    }

    #[test]
    fn preempted_schedules_meter_penalties() {
        let mut soc = benchmarks::d695();
        benchmarks::grant_preemption_to_large_cores(&mut soc, 2);
        let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(16))
            .run()
            .unwrap();
        let wires = WireAssignment::assign(&schedule).unwrap();
        let image = TesterSim::new(&soc, &schedule, &wires).run();
        for d in &image.deliveries {
            assert_eq!(d.cycles_driven, d.cycles_needed, "core {}", d.core);
        }
    }

    #[test]
    fn synthetic_socs_replay_cleanly() {
        let cfg = SynthConfig::new(10).with_constraints();
        for seed in 0..6 {
            let soc = cfg.generate(seed);
            let image = image_for(&soc, 20);
            assert_eq!(image.channels, 20);
            assert_eq!(image.deliveries.len(), soc.len());
        }
    }
}
