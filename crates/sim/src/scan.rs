//! Phase-accurate simulation of one core's scan test.

use soctam_wrapper::{Cycles, WrapperDesign};

/// One phase of the scan test protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPhase {
    /// Shifting the first pattern into the wrapper chains.
    InitialShiftIn,
    /// One capture cycle applying a pattern.
    Capture,
    /// Shifting a response out while the next pattern shifts in
    /// (pipelined; lasts `max(sᵢ, sₒ)` cycles).
    OverlappedShift,
    /// Shifting the final response out.
    FinalShiftOut,
}

/// The phase sequence and cycle counts of one simulated scan test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanTrace {
    /// Total cycles the test occupied the TAM.
    pub cycles: Cycles,
    /// Stimulus bits shifted into the wrapper (per-chain fill, summed).
    pub bits_in: u64,
    /// Response bits shifted out of the wrapper.
    pub bits_out: u64,
    /// Number of capture cycles (= pattern count).
    pub captures: u64,
    /// The phases in protocol order with their durations.
    pub phases: Vec<(ScanPhase, Cycles)>,
}

/// Simulates scan test application through a concrete [`WrapperDesign`].
///
/// The simulator walks the standard scan protocol: fill all wrapper chains
/// (`sᵢ` cycles — the longest scan-in path gates the phase), then for each
/// pattern a capture cycle followed by an overlapped shift (responses of
/// pattern *j* leave while pattern *j+1* enters, `max(sᵢ, sₒ)` cycles),
/// and a final response shift-out (`sₒ` cycles). No closed-form timing is
/// consulted — agreement with [`WrapperDesign::test_time`] is a theorem
/// the test suite checks, not an assumption.
#[derive(Debug, Clone)]
pub struct ScanTestSim<'a> {
    design: &'a WrapperDesign,
}

impl<'a> ScanTestSim<'a> {
    /// Prepares a simulation of the given wrapper design.
    pub fn new(design: &'a WrapperDesign) -> Self {
        Self { design }
    }

    /// Runs the protocol to completion.
    pub fn run(&self) -> ScanTrace {
        let d = self.design;
        let si = d.scan_in();
        let so = d.scan_out();
        let p = d.patterns();
        let overlap = si.max(so);

        let mut phases = Vec::new();
        let mut cycles: Cycles = 0;
        let mut bits_in: u64 = 0;
        let mut bits_out: u64 = 0;

        // Fill the chains with the first pattern. Each of the k chains
        // loads its own cells; the longest scan-in path gates the phase.
        if p > 0 {
            phases.push((ScanPhase::InitialShiftIn, si));
            cycles += si;
            bits_in += per_pattern_in_bits(d);
        }

        for pattern in 1..=p {
            phases.push((ScanPhase::Capture, 1));
            cycles += 1;

            if pattern < p {
                // Response of `pattern` leaves while `pattern + 1` enters.
                phases.push((ScanPhase::OverlappedShift, overlap));
                cycles += overlap;
                bits_in += per_pattern_in_bits(d);
                bits_out += per_pattern_out_bits(d);
            } else {
                phases.push((ScanPhase::FinalShiftOut, so));
                cycles += so;
                bits_out += per_pattern_out_bits(d);
            }
        }

        ScanTrace {
            cycles,
            bits_in,
            bits_out,
            captures: p,
            phases,
        }
    }
}

fn per_pattern_in_bits(d: &WrapperDesign) -> u64 {
    d.chain_flops()
        .iter()
        .zip(d.chain_inputs())
        .map(|(f, i)| f + i)
        .sum()
}

fn per_pattern_out_bits(d: &WrapperDesign) -> u64 {
    d.chain_flops()
        .iter()
        .zip(d.chain_outputs())
        .map(|(f, o)| f + o)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use soctam_wrapper::CoreTest;

    fn design(inputs: u32, outputs: u32, chains: Vec<u32>, patterns: u64, w: u16) -> WrapperDesign {
        let core = CoreTest::new(inputs, outputs, 0, chains, patterns).unwrap();
        WrapperDesign::design(&core, w).unwrap()
    }

    #[test]
    fn simulation_matches_closed_form() {
        let d = design(8, 4, vec![30, 20, 10], 50, 3);
        let trace = ScanTestSim::new(&d).run();
        assert_eq!(trace.cycles, d.test_time());
        assert_eq!(trace.captures, 50);
    }

    #[test]
    fn bit_accounting() {
        let d = design(8, 4, vec![30, 20, 10], 50, 3);
        let trace = ScanTestSim::new(&d).run();
        // Every pattern writes all writable cells and reads all readable.
        assert_eq!(trace.bits_in, 50 * (60 + 8));
        assert_eq!(trace.bits_out, 50 * (60 + 4));
    }

    #[test]
    fn phase_sequence_shape() {
        let d = design(4, 4, vec![16], 3, 2);
        let trace = ScanTestSim::new(&d).run();
        assert_eq!(trace.phases[0].0, ScanPhase::InitialShiftIn);
        assert_eq!(trace.phases.last().unwrap().0, ScanPhase::FinalShiftOut);
        let captures = trace
            .phases
            .iter()
            .filter(|(p, _)| *p == ScanPhase::Capture)
            .count();
        assert_eq!(captures, 3);
        let overlaps = trace
            .phases
            .iter()
            .filter(|(p, _)| *p == ScanPhase::OverlappedShift)
            .count();
        assert_eq!(overlaps, 2); // p - 1
    }

    #[test]
    fn single_pattern_has_no_overlap() {
        let d = design(4, 4, vec![16], 1, 2);
        let trace = ScanTestSim::new(&d).run();
        assert!(trace
            .phases
            .iter()
            .all(|(p, _)| *p != ScanPhase::OverlappedShift));
        assert_eq!(trace.cycles, d.test_time());
    }

    #[test]
    fn combinational_core_simulates() {
        let d = design(32, 32, vec![], 12, 8);
        let trace = ScanTestSim::new(&d).run();
        assert_eq!(trace.cycles, d.test_time());
        assert_eq!(trace.bits_in, 12 * 32);
        assert_eq!(trace.bits_out, 12 * 32);
    }

    proptest! {
        /// The simulator and the closed form agree on every design.
        #[test]
        fn sim_equals_formula(
            inputs in 0u32..60,
            outputs in 0u32..60,
            chains in proptest::collection::vec(1u32..80, 0..10),
            patterns in 1u64..300,
            width in 1u16..24,
        ) {
            prop_assume!(inputs + outputs > 0 || !chains.is_empty());
            let core = CoreTest::new(inputs, outputs, 0, chains, patterns).unwrap();
            let d = WrapperDesign::design(&core, width).unwrap();
            let trace = ScanTestSim::new(&d).run();
            prop_assert_eq!(trace.cycles, d.test_time());
            prop_assert_eq!(trace.bits_in, patterns * core.scan_in_bits());
            prop_assert_eq!(trace.bits_out, patterns * core.scan_out_bits());
            // Phase durations sum to the total.
            let total: u64 = trace.phases.iter().map(|&(_, c)| c).sum();
            prop_assert_eq!(total, trace.cycles);
        }
    }
}
