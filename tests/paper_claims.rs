//! Qualitative claims of the paper, checked as executable assertions.
//! EXPERIMENTS.md records the quantitative (paper-vs-measured) side.

use soctam::flow::{FlowConfig, PowerPolicy, TestFlow};
use soctam::schedule::bounds::{lower_bound, lower_bounds};
use soctam::soc::benchmarks;
use soctam::volume::CostCurve;
use soctam::wrapper::RectangleSet;

/// §3 / Figure 1: testing time decreases only at Pareto-optimal points,
/// and assigning more than the highest Pareto width buys nothing.
#[test]
fn fig1_staircase_claims() {
    let soc = benchmarks::p93791();
    let rects = RectangleSet::build(soc.core(5).test(), 64);
    let pw = rects.pareto_widths();
    // Drops exactly at Pareto widths.
    for w in 2..=64u16 {
        let dropped = rects.time_at(w) < rects.time_at(w - 1);
        assert_eq!(dropped, pw.contains(&w), "width {w}");
    }
    // Flat beyond the highest Pareto width (the paper's 47 for this core).
    let hi = rects.highest_pareto_width();
    assert_eq!(hi, 47);
    assert_eq!(rects.time_at(hi), rects.time_at(64));
}

/// Table 1: the lower bound halves as the TAM doubles (area-dominated
/// regime), except where a bottleneck core saturates it (p34392).
#[test]
fn table1_lower_bound_scaling() {
    let d695 = benchmarks::d695();
    let lbs = lower_bounds(&d695, &[16, 32, 64], 64);
    // Area-dominated: LB(16) ~ 2*LB(32) ~ 4*LB(64) within rounding.
    assert!(lbs[0].abs_diff(2 * lbs[1]) <= 2);
    assert!(lbs[0].abs_diff(4 * lbs[2]) <= 4);

    let p34392 = benchmarks::p34392();
    let saturated = lower_bounds(&p34392, &[28, 32], 64);
    // The bottleneck core pins both.
    assert_eq!(saturated[0], saturated[1]);
}

/// §6: at `W = 32`, p34392 reaches its minimum testing time — the
/// bottleneck Core 18's own minimum time (paper: 544,579; ours ≈ 544,602).
#[test]
fn p34392_saturates_at_core18_minimum() {
    let soc = benchmarks::p34392();
    let idx = soc.core_by_name("c18").expect("core 18 exists");
    let core18_min = RectangleSet::build(soc.core(idx).test(), 64).min_time();
    let run = TestFlow::new(&soc, FlowConfig::quick()).run(32).unwrap();
    assert_eq!(run.schedule.makespan(), core18_min);
    assert_eq!(run.schedule.makespan(), lower_bound(&soc, 32, 64));
}

/// §5 / Figure 9(b): tester data volume is non-monotonic in W, with local
/// minima at the time-staircase drops; the global V minimum does NOT sit
/// at the minimum-time width.
#[test]
fn fig9_volume_nonmonotonic() {
    let soc = benchmarks::d695();
    let flow = TestFlow::new(&soc, FlowConfig::quick());
    let pts = flow.sweep_widths(8..=64).unwrap();

    // Non-monotonic: volume both rises and falls somewhere.
    let rises = pts.windows(2).any(|p| p[1].volume > p[0].volume);
    let falls = pts.windows(2).any(|p| p[1].volume < p[0].volume);
    assert!(rises && falls);

    // Wherever T is flat between consecutive widths, V strictly rises.
    for pair in pts.windows(2) {
        if pair[1].time == pair[0].time {
            assert!(pair[1].volume > pair[0].volume);
        }
    }

    // The minimum-volume width is narrower than the minimum-time width.
    let v_min = pts.iter().min_by_key(|p| (p.volume, p.width)).unwrap();
    let t_min = pts.iter().min_by_key(|p| (p.time, p.width)).unwrap();
    assert!(v_min.width < t_min.width);
}

/// §5 / Figures 9(c)–(d): the cost curve interpolates between the V curve
/// (α = 0) and the T curve (α = 1), and the effective width moves outward
/// (wider) as α grows.
#[test]
fn cost_curve_interpolates_and_w_eff_grows() {
    let soc = benchmarks::d695();
    let flow = TestFlow::new(&soc, FlowConfig::quick());
    let pts = flow.sweep_widths(8..=64).unwrap();

    let w_at_v_min = CostCurve::new(&pts, 0.0).effective_width();
    let w_at_t_min = CostCurve::new(&pts, 1.0).effective_width();
    let mut last = w_at_v_min;
    for alpha in [0.25, 0.5, 0.75] {
        let w = CostCurve::new(&pts, alpha).effective_width();
        assert!(w >= last, "W_eff must not shrink as alpha grows");
        last = w;
    }
    assert!(w_at_t_min >= last);
}

/// Table 1: preemption helps on at least one benchmark at `W = 32`, and
/// every constrained variant still respects the lower bound. (Whether the
/// preemption *penalty* nets out negative on a given SOC depends on the
/// parameter sweep; EXPERIMENTS.md records the per-cell outcomes, which —
/// like the paper's — go both ways.)
#[test]
fn constrained_schedules_ordering() {
    let mut faster_somewhere = false;
    for mut soc in benchmarks::all() {
        benchmarks::grant_preemption_to_large_cores(&mut soc, 2);
        let w = 32;
        let np = TestFlow::new(&soc, FlowConfig::quick().without_preemption())
            .run(w)
            .unwrap()
            .schedule
            .makespan();
        let pre = TestFlow::new(&soc, FlowConfig::quick())
            .run(w)
            .unwrap()
            .schedule
            .makespan();
        let pow = TestFlow::new(
            &soc,
            FlowConfig::quick().with_power(PowerPolicy::MaxCorePower),
        )
        .run(w)
        .unwrap()
        .schedule
        .makespan();
        if pre < np {
            faster_somewhere = true;
        }
        let _ = np;
        // All heuristic variants respect the information bound.
        assert!(pow >= lower_bound(&soc, w, 64));
    }
    assert!(
        faster_somewhere,
        "preemption should help at least one benchmark"
    );
}

/// §6: our reconstruction of d695 lands close to the paper's published
/// lower bounds, so Table 1 magnitudes are directly comparable.
#[test]
fn d695_lower_bounds_match_paper_within_one_percent() {
    let soc = benchmarks::d695();
    for (w, paper) in [(16u16, 41_232u64), (32, 20_616), (48, 13_744), (64, 10_308)] {
        let got = lower_bound(&soc, w, 64);
        assert!(
            got.abs_diff(paper) * 100 <= paper,
            "W={w}: got {got}, paper {paper}"
        );
    }
}
