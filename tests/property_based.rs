//! Cross-crate property tests: random SOCs through the whole pipeline.

use proptest::prelude::*;

use soctam::schedule::bounds::lower_bound;
use soctam::schedule::validate::{validate, validate_power};
use soctam::schedule::{ScheduleBuilder, SchedulerConfig, Slice};
use soctam::soc::itc02;
use soctam::soc::synth::SynthConfig;
use soctam::tam::WireAssignment;
use soctam::wrapper::RectangleSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated SOC schedules successfully at any width; the result
    /// validates, respects the lower bound, and is wire-assignable.
    #[test]
    fn pipeline_holds_for_random_socs(
        cores in 2usize..18,
        seed in 0u64..1000,
        width in 1u16..72,
        percent in 1u32..40,
        bump in 0u16..5,
    ) {
        let soc = SynthConfig::new(cores).generate(seed);
        let cfg = SchedulerConfig::new(width)
            .with_percent(percent)
            .with_bump(bump);
        let schedule = ScheduleBuilder::new(&soc, cfg).run().expect("schedulable");
        prop_assert!(validate(&soc, &schedule).is_ok());
        prop_assert!(schedule.makespan() >= lower_bound(&soc, width, 64));
        let wires = WireAssignment::assign(&schedule).expect("assignable");
        prop_assert!(wires.verify().is_ok());
    }

    /// Constraint-heavy SOCs with preemption budgets also hold: budgets,
    /// precedence, hierarchy, and BIST exclusion all validate.
    #[test]
    fn constrained_pipeline_holds(
        cores in 2usize..14,
        seed in 0u64..500,
        width in 4u16..48,
    ) {
        let soc = SynthConfig::new(cores)
            .with_constraints()
            .with_preemption(2)
            .generate(seed);
        let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(width))
            .run()
            .expect("schedulable");
        prop_assert!(validate(&soc, &schedule).is_ok());
        for idx in 0..soc.len() {
            let stats = schedule.core_stats(idx).expect("core tested");
            prop_assert!(stats.preemptions <= soc.core(idx).max_preemptions());
        }
    }

    /// A power ceiling of the maximum core power is always feasible and
    /// always honoured.
    #[test]
    fn power_ceiling_always_honoured(
        cores in 2usize..12,
        seed in 0u64..300,
        width in 4u16..40,
    ) {
        let soc = SynthConfig::new(cores).generate(seed);
        let p_max = soc.max_core_power();
        let cfg = SchedulerConfig::new(width).with_power_limit(p_max);
        let schedule = ScheduleBuilder::new(&soc, cfg).run().expect("schedulable");
        prop_assert!(validate_power(&soc, &schedule, p_max).is_ok());
    }

    /// The `.soc` text format round-trips every generated model exactly.
    #[test]
    fn text_format_round_trips(cores in 1usize..20, seed in 0u64..1000) {
        let soc = SynthConfig::new(cores)
            .with_constraints()
            .with_preemption(3)
            .generate(seed);
        let text = itc02::to_string(&soc);
        let back = itc02::parse(&text).expect("parses back");
        prop_assert_eq!(soc, back);
    }

    /// Non-preemptive schedules consist of exactly one slice per core.
    #[test]
    fn non_preemptive_means_contiguous(
        cores in 2usize..14,
        seed in 0u64..300,
        width in 4u16..48,
    ) {
        let soc = SynthConfig::new(cores).with_preemption(3).generate(seed);
        let cfg = SchedulerConfig::new(width).without_preemption();
        let schedule = ScheduleBuilder::new(&soc, cfg).run().expect("schedulable");
        for idx in 0..soc.len() {
            prop_assert_eq!(schedule.core_slices(idx).len(), 1);
        }
    }

    /// Every schedule of a random valid SOC passes `schedule::validate`,
    /// and the invariants the validator promises hold when recomputed
    /// from the raw slices: the TAM is never over-subscribed, an imposed
    /// power budget is never exceeded, and no core overlaps itself.
    #[test]
    fn validated_schedules_hold_under_recomputation(
        cores in 2usize..16,
        seed in 0u64..800,
        width in 2u16..64,
        constrained in 0u8..2,
    ) {
        let mut config = SynthConfig::new(cores).with_preemption(2);
        if constrained == 1 {
            config = config.with_constraints();
        }
        let soc = config.generate(seed);
        let p_max = soc.max_core_power();
        let cfg = SchedulerConfig::new(width).with_power_limit(p_max);
        let schedule = ScheduleBuilder::new(&soc, cfg).run().expect("schedulable");

        // The library validator accepts it...
        prop_assert!(validate(&soc, &schedule).is_ok());
        prop_assert!(validate_power(&soc, &schedule, p_max).is_ok());

        // ...and an independent recomputation agrees. Check at every
        // event time (slice starts suffice: widths and powers in use are
        // piecewise-constant and only rise at starts).
        let mut starts: Vec<u64> = schedule.slices().iter().map(|s| s.start).collect();
        starts.sort_unstable();
        starts.dedup();
        for &t in &starts {
            let running: Vec<&Slice> = schedule
                .slices()
                .iter()
                .filter(|s| s.start <= t && t < s.end)
                .collect();
            let wires: u32 = running.iter().map(|s| u32::from(s.width)).sum();
            prop_assert!(wires <= u32::from(width), "t={}: {} wires", t, wires);
            let power: u64 = running.iter().map(|s| soc.core(s.core).power()).sum();
            prop_assert!(power <= p_max, "t={}: power {} > {}", t, power, p_max);
        }

        // No core overlaps itself, and its slices cover exactly the
        // wrapper model's testing time at the assigned width, plus one
        // scan-in/scan-out penalty per actual interruption.
        for idx in 0..soc.len() {
            let mut slices = schedule.core_slices(idx);
            slices.sort_by_key(|s| s.start);
            for pair in slices.windows(2) {
                prop_assert!(pair[0].end <= pair[1].start, "core {} overlaps itself", idx);
            }
            let busy: u64 = slices.iter().map(Slice::duration).sum();
            let rects = RectangleSet::build(soc.core(idx).test(), slices[0].width);
            let preemptions = (slices.len() - 1) as u64;
            let expected = rects.time_at(slices[0].width)
                + preemptions * rects.rect_at(slices[0].width).preemption_penalty();
            prop_assert_eq!(busy, expected, "core {}", idx);
        }
    }
}
