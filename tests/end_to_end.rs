//! End-to-end integration: the full framework on every benchmark SOC.

use soctam::flow::{FlowConfig, PowerPolicy, TestFlow};
use soctam::schedule::validate::{validate, validate_power};
use soctam::soc::benchmarks;

#[test]
fn full_flow_on_every_benchmark() {
    for soc in benchmarks::all() {
        let flow = TestFlow::new(&soc, FlowConfig::quick());
        for w in [16u16, 32] {
            let run = flow
                .run(w)
                .unwrap_or_else(|e| panic!("{} W={w}: {e}", soc.name()));
            // The schedule satisfies every constraint independently.
            validate(&soc, &run.schedule).unwrap_or_else(|e| panic!("{} W={w}: {e}", soc.name()));
            // It respects the information-theoretic lower bound.
            assert!(run.schedule.makespan() >= run.lower_bound);
            // Its volume obeys the tester memory model.
            assert_eq!(run.volume, u64::from(w) * run.schedule.makespan());
            // Its wires are concretely assignable with fork-and-merge.
            run.wires.verify().unwrap();
            assert_eq!(run.wires.tam_width(), w);
        }
    }
}

#[test]
fn power_constrained_flow_on_every_benchmark() {
    for soc in benchmarks::all() {
        let p_max = soc.max_core_power();
        let cfg = FlowConfig::quick().with_power(PowerPolicy::MaxCorePower);
        let run = TestFlow::new(&soc, cfg).run(32).unwrap();
        validate(&soc, &run.schedule).unwrap();
        validate_power(&soc, &run.schedule, p_max).unwrap();
    }
}

#[test]
fn preemption_budgets_respected_end_to_end() {
    for mut soc in benchmarks::all() {
        benchmarks::grant_preemption_to_large_cores(&mut soc, 2);
        let run = TestFlow::new(&soc, FlowConfig::quick()).run(24).unwrap();
        validate(&soc, &run.schedule).unwrap();
        for idx in 0..soc.len() {
            let stats = run.schedule.core_stats(idx).expect("core tested");
            assert!(
                stats.preemptions <= soc.core(idx).max_preemptions(),
                "{} core {idx}",
                soc.name()
            );
        }
    }
}

#[test]
fn flow_is_deterministic() {
    let soc = benchmarks::p22810();
    let a = TestFlow::new(&soc, FlowConfig::quick()).run(32).unwrap();
    let b = TestFlow::new(&soc, FlowConfig::quick()).run(32).unwrap();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.params, b.params);
    assert_eq!(a.wires, b.wires);
}

#[test]
fn wider_tams_reduce_time_but_not_always_volume() {
    let soc = benchmarks::d695();
    let flow = TestFlow::new(&soc, FlowConfig::quick());
    let narrow = flow.run(16).unwrap();
    let wide = flow.run(64).unwrap();
    assert!(wide.schedule.makespan() < narrow.schedule.makespan());
    // §5's motivation: quadrupling the wires did not quarter the volume.
    assert!(wide.volume * 2 > narrow.volume);
}
