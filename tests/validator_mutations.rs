//! Failure injection: corrupt valid schedules in targeted ways and assert
//! the independent validator rejects every corruption. This guards the
//! guard — a validator that silently accepts broken schedules would let
//! scheduler bugs through the whole test suite.

use soctam::schedule::validate::{validate, validate_power};
use soctam::schedule::{Schedule, ScheduleBuilder, SchedulerConfig, Slice};
use soctam::soc::{benchmarks, Soc};

fn valid_pair() -> (Soc, Schedule) {
    let mut soc = benchmarks::d695();
    benchmarks::grant_preemption_to_large_cores(&mut soc, 2);
    let schedule = ScheduleBuilder::new(&soc, SchedulerConfig::new(16))
        .run()
        .expect("schedulable");
    validate(&soc, &schedule).expect("baseline schedule is valid");
    (soc, schedule)
}

fn rebuild(original: &Schedule, slices: Vec<Slice>) -> Schedule {
    Schedule::from_slices(original.soc_name().to_owned(), original.tam_width(), slices)
}

#[test]
fn dropping_a_core_is_caught() {
    let (soc, schedule) = valid_pair();
    let victim = schedule.slices()[0].core;
    let slices: Vec<Slice> = schedule
        .slices()
        .iter()
        .copied()
        .filter(|s| s.core != victim)
        .collect();
    let err = validate(&soc, &rebuild(&schedule, slices)).unwrap_err();
    assert!(err.to_string().contains("never tested"));
}

#[test]
fn truncating_a_test_is_caught() {
    let (soc, schedule) = valid_pair();
    let mut slices: Vec<Slice> = schedule.slices().to_vec();
    // Shorten the longest slice by one cycle.
    let longest = slices
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.duration())
        .map(|(i, _)| i)
        .unwrap();
    slices[longest].end -= 1;
    assert!(validate(&soc, &rebuild(&schedule, slices)).is_err());
}

#[test]
fn stretching_a_test_is_caught() {
    let (soc, schedule) = valid_pair();
    let mut slices: Vec<Slice> = schedule.slices().to_vec();
    // Lengthen the slice that ends last (cannot collide with a later one).
    let last = slices
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.end)
        .map(|(i, _)| i)
        .unwrap();
    slices[last].end += 1;
    assert!(validate(&soc, &rebuild(&schedule, slices)).is_err());
}

#[test]
fn width_change_mid_test_is_caught() {
    let (soc, schedule) = valid_pair();
    // Find a core with >= 2 slices (preempted) and change one slice width;
    // if none is preempted, split one slice into two different widths.
    let mut slices: Vec<Slice> = schedule.slices().to_vec();
    let preempted = soc
        .cores()
        .iter()
        .enumerate()
        .find(|(i, _)| schedule.core_slices(*i).len() >= 2)
        .map(|(i, _)| i);
    if let Some(core) = preempted {
        let idx = slices.iter().position(|s| s.core == core).unwrap();
        slices[idx].width += 1;
        // keep duration; the width flip alone must trip the validator
        let err = validate(&soc, &rebuild(&schedule, slices)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("width") || msg.contains("cycles"),
            "unexpected: {msg}"
        );
    } else {
        // No preemption in this schedule: fabricate a two-width core.
        let s = slices.iter().position(|s| s.duration() >= 2).unwrap();
        let orig = slices[s];
        let mid = orig.start + orig.duration() / 2;
        slices[s] = Slice { end: mid, ..orig };
        slices.push(Slice {
            start: mid,
            width: orig.width + 1,
            ..orig
        });
        let err = validate(&soc, &rebuild(&schedule, slices)).unwrap_err();
        assert!(err.to_string().contains("width"));
    }
}

#[test]
fn overbooking_the_tam_is_caught() {
    let (soc, schedule) = valid_pair();
    // Inflate every slice's width by a lot; the budget check must fire.
    let slices: Vec<Slice> = schedule
        .slices()
        .iter()
        .map(|s| Slice {
            width: s.width + schedule.tam_width(),
            ..*s
        })
        .collect();
    let err = validate(&soc, &rebuild(&schedule, slices)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("width") || msg.contains("budget"), "{msg}");
}

#[test]
fn excess_preemptions_are_caught() {
    let (soc, schedule) = valid_pair();
    // Split a non-preemptable core's slice with a gap.
    let victim = (0..soc.len())
        .find(|&i| soc.core(i).max_preemptions() == 0 && schedule.core_slices(i)[0].duration() > 10)
        .expect("a rigid core exists");
    let mut slices: Vec<Slice> = schedule
        .slices()
        .iter()
        .copied()
        .filter(|s| s.core != victim)
        .collect();
    let orig = schedule.core_slices(victim)[0];
    let mid = orig.start + orig.duration() / 2;
    slices.push(Slice { end: mid, ..orig });
    slices.push(Slice {
        start: mid + 1,
        end: orig.end + 1,
        ..orig
    });
    let err = validate(&soc, &rebuild(&schedule, slices)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("preempted") || msg.contains("cycles"), "{msg}");
}

#[test]
fn precedence_violations_are_caught() {
    let (mut soc, schedule) = valid_pair();
    // Add a precedence edge that the existing schedule certainly violates:
    // the last-finishing core must precede the first-starting one.
    let first = schedule.slices().first().unwrap().core;
    let last = schedule.slices().iter().max_by_key(|s| s.end).unwrap().core;
    if first != last {
        soc.add_precedence(last, first).unwrap();
        let err = validate(&soc, &schedule).unwrap_err();
        assert!(err.to_string().contains("precedence"));
    }
}

#[test]
fn concurrency_violations_are_caught() {
    let (mut soc, schedule) = valid_pair();
    // Find two cores that overlap in the valid schedule and declare them
    // mutually exclusive after the fact.
    let slices = schedule.slices();
    let mut found = None;
    'outer: for a in slices {
        for b in slices {
            if a.core != b.core && a.overlaps(b) {
                found = Some((a.core, b.core));
                break 'outer;
            }
        }
    }
    let (a, b) = found.expect("some concurrency exists at W=16");
    soc.add_concurrency(a, b).unwrap();
    let err = validate(&soc, &schedule).unwrap_err();
    assert!(err.to_string().contains("concurrency"));
}

#[test]
fn power_overload_is_caught_by_power_validator() {
    let (soc, schedule) = valid_pair();
    // The schedule was built unconstrained; a ceiling of the smallest core
    // power must be violated somewhere.
    let p_min = soc.cores().iter().map(|c| c.power()).min().unwrap();
    assert!(validate_power(&soc, &schedule, p_min.saturating_sub(1)).is_err());
    // And the trivially generous ceiling passes.
    assert!(validate_power(&soc, &schedule, u64::MAX).is_ok());
}

#[test]
fn self_overlap_is_caught() {
    let (soc, schedule) = valid_pair();
    let mut slices: Vec<Slice> = schedule.slices().to_vec();
    // Duplicate a slice shifted by one cycle: same core overlaps itself.
    let s = slices[0];
    slices.push(Slice {
        start: s.start + 1,
        end: s.end + 1,
        ..s
    });
    assert!(validate(&soc, &rebuild(&schedule, slices)).is_err());
}
