//! # soctam
//!
//! Integrated plug-and-play SOC test automation, reproducing Iyengar,
//! Chakrabarty & Marinissen, *"Wrapper/TAM Co-Optimization,
//! Constraint-Driven Test Scheduling, and Tester Data Volume Reduction for
//! SOCs"*, DAC 2002.
//!
//! This umbrella crate re-exports the whole workspace. Most users want:
//!
//! * [`soc::benchmarks`] — the four evaluated SOCs (`d695`, `p22810`,
//!   `p34392`, `p93791`);
//! * [`flow::TestFlow`] — the one-stop API: wrapper/TAM co-optimization,
//!   constraint-driven scheduling, wire assignment, and data-volume
//!   trade-off per TAM width;
//! * [`engine::Engine`] — the batch-serving facade: mixed
//!   schedule/sweep/bounds requests served concurrently through a shared
//!   [`schedule::ContextRegistry`] of compiled SOC contexts;
//! * [`report`] — regenerates the paper's tables and figures.
//!
//! # Example
//!
//! ```
//! use soctam::flow::{FlowConfig, TestFlow};
//! use soctam::soc::benchmarks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = benchmarks::d695();
//! let run = TestFlow::new(&soc, FlowConfig::quick()).run(32)?;
//! println!(
//!     "d695 on 32 wires: {} cycles (lower bound {}), {} bits of tester data",
//!     run.schedule.makespan(),
//!     run.lower_bound,
//!     run.volume
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use soctam_core::{baseline, engine, flow, report, schedule, sim, soc, tam, volume, wrapper};
