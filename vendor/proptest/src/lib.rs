//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the slice of proptest this workspace actually uses:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(...)]`), expanding each `fn name(arg in strategy)`
//!   into a plain `#[test]` that samples every argument `cases` times;
//! * [`ProptestConfig::with_cases`];
//! * integer [`Range`](std::ops::Range) strategies and
//!   [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`], which simply forward to
//!   `assert!` / `assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! file: the generator is seeded from the test's name, so every run of a
//! given test replays the identical case sequence, and a failure message
//! reports the case index for manual replay.

#![forbid(unsafe_code)]

use std::ops::Range;

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Knobs for a [`proptest!`] block. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator backing the shim (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so each property replays the
    /// same case sequence on every run.
    pub fn deterministic(name: &str) -> Self {
        let mut state: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring proptest's
    /// `Strategy::prop_map`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod bool {
    //! Boolean strategies, mirroring `proptest::bool`.
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod option {
    //! `Option` strategies, mirroring `proptest::option`.
    use super::{Strategy, TestRng};

    /// Strategy built by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Yields `None` a quarter of the time and `Some` of the inner
    /// strategy otherwise (real proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// uniformly from a range. Built by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Forwarding shim for proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Forwarding shim for proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Forwarding shim for proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Shim for proptest's `prop_assume!`: skips the current case when the
/// condition does not hold. (The property body runs inside a closure, so
/// `return` abandons just this case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// The property-test macro. Each contained function becomes a `#[test]`
/// that samples its arguments from the given strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Render inputs before the body runs: the body may consume
                // its arguments by value.
                let __inputs = [$(
                    format!(concat!(stringify!($arg), " = {:?}"), $arg)
                ),+].join(", ");
                let __caught = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(payload) = __caught {
                    eprintln!(
                        "proptest shim: property {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __inputs,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; vec sizes honour their range.
        #[test]
        fn shim_self_check(
            x in 3u32..17,
            v in crate::collection::vec(1u8..5, 0..9),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&e| (1..5).contains(&e)));
        }

        /// Tuples, prop_map, option::of, and bool::ANY compose.
        #[test]
        fn combinators_self_check(
            pair in (1u32..5, 10u64..20).prop_map(|(a, b)| (b, a)),
            opt in crate::option::of(0usize..3),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((10..20).contains(&pair.0));
            prop_assert!((1..5).contains(&pair.1));
            if let Some(v) = opt {
                prop_assert!(v < 3);
            }
            let _: bool = flag;
        }
    }
}
