//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the slice of criterion this workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! harness macros (benches are wired with `harness = false`, as with real
//! criterion).
//!
//! Measurement is deliberately simple: each benchmark body is warmed up
//! once, then run `sample_size` times under a wall-clock timer, and the
//! mean/min/max per-iteration times are printed. There are no statistics,
//! plots, or baselines — the goal is that `cargo bench` produces honest
//! first-order numbers and `cargo bench --no-run` compiles everything.
//! When a bench binary is invoked with `--test` (as `cargo test --benches`
//! does), each body runs exactly once, untimed.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint` semantics.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver. One per bench binary.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments: `--test` runs each body once
    /// (untimed); the first free argument filters benchmarks by substring.
    /// Harness flags that cargo forwards (`--bench`, `--nocapture`, ...)
    /// are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                a if a.starts_with("--") => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        self
    }

    /// Default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, &mut body);
        self
    }

    fn run_one<F>(&mut self, full_name: &str, body: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(f) = &self.filter {
            if !full_name.contains(f.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            test_mode: self.test_mode,
            sample_size: self.sample_size,
        };
        body(&mut bencher);
        if self.test_mode {
            println!("test {full_name} ... ok");
            return;
        }
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!("{full_name:<55} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({n} samples)");
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample_size = self.sample_size;
        let saved = self.parent.sample_size;
        self.parent.sample_size = sample_size;
        self.parent.run_one(&full, &mut body);
        self.parent.sample_size = saved;
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| body(b, input))
    }

    /// Ends the group. (No-op in the shim; mirrors criterion's API.)
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark, `function/parameter`.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.rendered
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handle passed to benchmark bodies.
pub struct Bencher {
    samples: Vec<Duration>,
    test_mode: bool,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls
    /// (or a single untimed call in `--test` mode).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 8).into_benchmark_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(64).into_benchmark_id(), "64");
    }
}
