//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored shim provides exactly the surface the workspace consumes:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit generator (SplitMix64 state
//!   update feeding an xorshift* output mix);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of the common integer
//!   types, and [`Rng::gen_bool`].
//!
//! The streams are *not* bit-compatible with upstream `rand`'s `StdRng`
//! (which is ChaCha12); callers in this workspace only rely on determinism
//! for a given seed, which this shim guarantees.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator.
    ///
    /// SplitMix64 state update with an xorshift-multiply output mix; passes
    /// casual uniformity checks and is plenty for synthetic-SOC generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixed point without disturbing other seeds.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u16..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(rng.gen_range(4u32..=4), 4);
    }
}
