//! Selective test preemption (§4): grant the larger cores a preemption
//! budget, compare against non-preemptive scheduling, and show the
//! per-core preemption counts and scan-penalty accounting.
//!
//! Run with: `cargo run --release --example preemption_study`

use soctam::flow::{FlowConfig, TestFlow};
use soctam::schedule::validate::validate;
use soctam::soc::benchmarks;
use soctam::wrapper::RectangleSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut soc = benchmarks::p93791();
    // The paper sets max_preempts = 2 for the larger cores.
    benchmarks::grant_preemption_to_large_cores(&mut soc, 2);

    let width = 48;
    let non_preemptive =
        TestFlow::new(&soc, FlowConfig::quick().without_preemption()).run(width)?;
    let preemptive = TestFlow::new(&soc, FlowConfig::quick()).run(width)?;
    validate(&soc, &non_preemptive.schedule)?;
    validate(&soc, &preemptive.schedule)?;

    let t_np = non_preemptive.schedule.makespan();
    let t_p = preemptive.schedule.makespan();
    println!("{} on {width} wires:", soc.name());
    println!("  non-preemptive: {t_np} cycles");
    println!(
        "  preemptive    : {t_p} cycles ({}{:.2}%)",
        if t_p <= t_np { "-" } else { "+" },
        100.0 * t_np.abs_diff(t_p) as f64 / t_np as f64
    );
    println!();

    // Which tests were actually preempted, and what did each interruption
    // cost? (One extra scan-in + scan-out per preemption.)
    println!(
        "{:<6} {:>6} {:>10} {:>14}",
        "core", "splits", "preempts", "penalty cycles"
    );
    let mut total_penalty = 0u64;
    for idx in 0..soc.len() {
        let stats = preemptive
            .schedule
            .core_stats(idx)
            .expect("all cores scheduled");
        if stats.preemptions == 0 {
            continue;
        }
        let rects = RectangleSet::build(soc.core(idx).test(), stats.width);
        let penalty =
            u64::from(stats.preemptions) * rects.rect_at(stats.width).preemption_penalty();
        total_penalty += penalty;
        println!(
            "{:<6} {:>6} {:>10} {:>14}",
            soc.core(idx).name(),
            stats.preemptions + 1,
            stats.preemptions,
            penalty
        );
    }
    println!("total preemption overhead: {total_penalty} cycles");
    println!(
        "(the schedule still wins when the reclaimed idle time outweighs the overhead;\n\
         the paper notes preemption can lose on SOCs with many short tests)"
    );
    Ok(())
}
