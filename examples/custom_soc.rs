//! Building a custom SOC from scratch: describe cores through the API or
//! the ITC'02-style text format, add hierarchy and constraints, schedule,
//! and inspect the concrete wire assignment.
//!
//! Run with: `cargo run --release --example custom_soc`

use soctam::flow::{FlowConfig, TestFlow};
use soctam::schedule::validate::validate;
use soctam::soc::{itc02, Core, Soc};
use soctam::wrapper::CoreTest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- option 1: the programmatic API --------------------------------
    let mut soc = Soc::new("camera_soc");
    let isp = soc.add_core(Core::new(
        "isp",
        CoreTest::builder()
            .inputs(64)
            .outputs(64)
            .uniform_scan_chains(12, 96)
            .patterns(220)
            .build()?,
    ));
    let dsp = soc.add_core(
        Core::builder(
            "dsp",
            CoreTest::builder()
                .inputs(48)
                .outputs(32)
                .uniform_scan_chains(8, 128)
                .patterns(180)
                .build()?,
        )
        .max_preemptions(2)
        .build(),
    );
    // An embedded SRAM tested through a shared BIST engine, nested in the
    // DSP subsystem (so it can never test concurrently with its parent).
    let sram = soc.add_core(
        Core::builder(
            "sram",
            CoreTest::builder()
                .inputs(20)
                .outputs(20)
                .patterns(400)
                .build()?,
        )
        .bist_engine(0)
        .parent(dsp)
        .build(),
    );
    // Memories are tested first so later system test can use them.
    soc.add_precedence(sram, isp)?;
    soc.validate()?;

    // --- option 2: the .soc text format round-trips the same model -----
    let text = itc02::to_string(&soc);
    println!("--- camera_soc in .soc format ---\n{text}");
    assert_eq!(itc02::parse(&text)?, soc);

    // --- schedule and inspect ------------------------------------------
    let run = TestFlow::new(&soc, FlowConfig::quick()).run(24)?;
    validate(&soc, &run.schedule)?;
    println!(
        "schedule on 24 wires: {} cycles (lower bound {})",
        run.schedule.makespan(),
        run.lower_bound
    );
    println!();
    println!(
        "{}",
        run.schedule.gantt(&|i| soc.core(i).name().to_string(), 80)
    );

    for a in run.wires.assignments() {
        println!(
            "{:<5} [{:>6}..{:>6}) wires {:?}",
            soc.core(a.slice.core).name(),
            a.slice.start,
            a.slice.end,
            a.wires
        );
    }
    Ok(())
}
