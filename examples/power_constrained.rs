//! Power-constrained scheduling: the same SOC, scheduled with and without
//! a power ceiling, showing how the ceiling serializes power-hungry tests
//! (§4 and the last column of Table 1).
//!
//! Run with: `cargo run --release --example power_constrained`

use soctam::flow::{FlowConfig, PowerPolicy, TestFlow};
use soctam::schedule::validate::{validate, validate_power};
use soctam::soc::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::p22810();
    let width = 48;

    // Paper power model: a core's test dissipates in proportion to its
    // test data bits per pattern; P_max is the largest single rating, so
    // no two "big" cores may burn together.
    let p_max = soc.max_core_power();
    println!("{}: per-core power ratings (bits/pattern)", soc.name());
    let mut rated: Vec<_> = soc.cores().iter().map(|c| (c.power(), c.name())).collect();
    rated.sort_unstable();
    for (p, name) in rated.iter().rev().take(5) {
        println!("  {name:<6} {p}");
    }
    println!("  ... P_max set to {p_max}");
    println!();

    let unconstrained = TestFlow::new(&soc, FlowConfig::quick()).run(width)?;
    let constrained = TestFlow::new(
        &soc,
        FlowConfig::quick().with_power(PowerPolicy::MaxCorePower),
    )
    .run(width)?;

    validate(&soc, &unconstrained.schedule)?;
    validate(&soc, &constrained.schedule)?;
    validate_power(&soc, &constrained.schedule, p_max)?;

    let t0 = unconstrained.schedule.makespan();
    let t1 = constrained.schedule.makespan();
    println!("unconstrained : {t0} cycles");
    println!(
        "power-limited : {t1} cycles (+{:.1}%)",
        100.0 * (t1 as f64 - t0 as f64) / t0 as f64
    );

    // Peak concurrent power with and without the ceiling.
    for (label, run) in [
        ("unconstrained", &unconstrained),
        ("power-limited", &constrained),
    ] {
        let peak = run
            .schedule
            .slices()
            .iter()
            .flat_map(|s| [s.start, s.end.saturating_sub(1)])
            .map(|t| {
                run.schedule
                    .slices()
                    .iter()
                    .filter(|s| s.start <= t && t < s.end)
                    .map(|s| soc.core(s.core).power())
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        println!("peak power under {label}: {peak}");
    }
    Ok(())
}
