//! Quickstart: schedule the d695 benchmark on a 16-wire TAM and print the
//! packed schedule — the textual equivalent of the paper's Figure 2.
//!
//! Run with: `cargo run --release --example quickstart`

use soctam::flow::{FlowConfig, TestFlow};
use soctam::schedule::validate::validate;
use soctam::soc::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d695();

    // The flow co-optimizes wrapper designs and the TAM, then packs the
    // rectangle schedule; `quick()` searches a small (m, d, slack) grid.
    let flow = TestFlow::new(&soc, FlowConfig::quick());
    let run = flow.run(16)?;

    println!(
        "{}: tested in {} cycles on 16 wires (lower bound {}, {:.1}% of it)",
        soc.name(),
        run.schedule.makespan(),
        run.lower_bound,
        100.0 * run.schedule.makespan() as f64 / run.lower_bound as f64
    );
    println!(
        "tester data volume: {} bits; TAM utilization {:.1}%",
        run.volume,
        run.schedule.utilization() * 100.0
    );
    println!();
    println!(
        "{}",
        run.schedule.gantt(&|i| soc.core(i).name().to_string(), 90)
    );

    // The schedule is re-checked by an independent validator, and the
    // fork-and-merge wire assignment is concrete and verified.
    validate(&soc, &run.schedule)?;
    let stats = run.wires.stats();
    println!(
        "wire assignment: {}/{} slices forked across non-contiguous wires",
        stats.forked_slices, stats.total_slices
    );
    Ok(())
}
