//! Validate the analytic models by simulation: run the phase-accurate
//! scan protocol for a single wrapped core, then replay a whole SOC
//! schedule on the tester and compare against the closed-form testing
//! time and the `V = W·T` memory model.
//!
//! Run with: `cargo run --release --example simulate_tester`

use soctam::flow::{FlowConfig, TestFlow};
use soctam::sim::{ScanTestSim, TesterSim};
use soctam::soc::benchmarks;
use soctam::wrapper::{WrapperDesign, WrapperLayout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d695();

    // --- one core, phase by phase ---------------------------------------
    let idx = soc.core_by_name("s5378").expect("benchmark core");
    let core = soc.core(idx).test();
    let design = WrapperDesign::design(core, 4)?;
    let trace = ScanTestSim::new(&design).run();

    println!("s5378 on 4 TAM wires:");
    println!("  analytic test time : {} cycles", design.test_time());
    println!("  simulated test time: {} cycles", trace.cycles);
    assert_eq!(trace.cycles, design.test_time());
    println!(
        "  moved {} stimulus bits in, {} response bits out, {} captures",
        trace.bits_in, trace.bits_out, trace.captures
    );

    // The cell-level wrapper the simulation shifted through:
    println!();
    println!("{}", WrapperLayout::build(core, 4)?.render("s5378"));

    // --- the whole SOC on the tester -------------------------------------
    let run = TestFlow::new(&soc, FlowConfig::quick()).run(16)?;
    let image = TesterSim::new(&soc, &run.schedule, &run.wires).run();

    println!("d695 schedule replayed on the tester (W = 16):");
    println!(
        "  per-pin vector depth : {} bits (= makespan)",
        image.depth_per_pin
    );
    println!(
        "  total tester memory  : {} bits (analytic V = {})",
        image.total_bits, run.volume
    );
    assert_eq!(image.total_bits, run.volume);
    println!(
        "  payload fraction     : {:.1}% ({} padding bits on idle wires)",
        image.payload_fraction() * 100.0,
        image.padding_bits
    );
    for d in image.deliveries.iter().take(3) {
        println!(
            "  {}: driven {} cycles, needed {} — exact",
            soc.core(d.core).name(),
            d.cycles_driven,
            d.cycles_needed
        );
        assert_eq!(d.cycles_driven, d.cycles_needed);
    }
    println!(
        "  ... (all {} cores delivered exactly)",
        image.deliveries.len()
    );
    Ok(())
}
