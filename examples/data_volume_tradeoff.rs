//! Tester data volume reduction (§5): sweep the SOC TAM width, plot
//! `T(W)`, `V(W) = W·T(W)`, and the normalized cost `C(W)`, and identify
//! the effective TAM width for several trade-off weights `α`.
//!
//! Run with: `cargo run --release --example data_volume_tradeoff`

use soctam::flow::{FlowConfig, TestFlow};
use soctam::report::render_plot;
use soctam::soc::benchmarks;
use soctam::volume::{CostCurve, TesterMemoryModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d695();
    let flow = TestFlow::new(&soc, FlowConfig::quick());

    // Figure 9(a)/(b): T and V against W.
    let points = flow.sweep_widths(8..=64)?;
    let t_series: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.width as f64, p.time as f64))
        .collect();
    let v_series: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.width as f64, p.volume as f64))
        .collect();
    println!("{}", render_plot("testing time T(W)", &t_series, 12, 60));
    println!(
        "{}",
        render_plot("tester data volume V(W) = W*T(W)", &v_series, 12, 60)
    );

    // Figure 9(c)/(d) and Table 2: the cost function and W_eff per alpha.
    println!(
        "{:>6} {:>6} {:>8} {:>12} {:>14}",
        "alpha", "W_eff", "C_min", "T", "V"
    );
    for alpha in [0.1, 0.3, 0.5, 0.75] {
        let curve = CostCurve::new(&points, alpha);
        let eff = curve.effective_point();
        println!(
            "{alpha:>6} {:>6} {:>8.3} {:>12} {:>14}",
            eff.width, eff.cost, eff.time, eff.volume
        );
    }

    // The multisite motivation: a narrower TAM lets one tester serve more
    // sites in parallel, so a slower-per-chip width can win on a batch.
    let tester = TesterMemoryModel::new(64 << 20, 64);
    println!();
    println!("batch of 1000 SOCs on a 64-channel tester:");
    for p in points.iter().filter(|p| [16, 32, 64].contains(&p.width)) {
        if let Some(batch) = tester.batch_time(p.width, p.time, 1000) {
            println!(
                "  W={:>2}: {} sites, batch time {} cycles",
                p.width,
                tester.sites(p.width),
                batch
            );
        }
    }
    Ok(())
}
