//! Batch serving: many scheduling requests, one shared context registry.
//!
//! Run with: `cargo run --release --example batch_serving`

use std::sync::Arc;

use soctam::engine::{Engine, EngineOutput, EngineRequest};
use soctam::flow::{FlowConfig, PowerPolicy};
use soctam::soc::benchmarks;

fn main() {
    // One engine serves mixed SOCs, widths, modes, and op kinds; each
    // distinct (SOC, w_max, power budget) key compiles exactly once.
    let engine = Engine::new();
    let d695 = Arc::new(benchmarks::d695());
    let p34392 = Arc::new(benchmarks::p34392());

    let requests = vec![
        EngineRequest::schedule(Arc::clone(&d695), FlowConfig::quick(), 16),
        EngineRequest::schedule(Arc::clone(&d695), FlowConfig::quick(), 32),
        EngineRequest::schedule(
            Arc::clone(&d695),
            FlowConfig::quick().with_power(PowerPolicy::MaxCorePower),
            32,
        ),
        EngineRequest::bounds(Arc::clone(&p34392), FlowConfig::quick(), vec![16, 24, 32]),
        EngineRequest::sweep(Arc::clone(&p34392), FlowConfig::quick(), vec![16, 24, 32]),
    ];

    for (req, result) in requests.iter().zip(engine.serve(&requests)) {
        match result {
            Ok(EngineOutput::Schedule(run)) => println!(
                "{:<8} schedule: {} cycles (lower bound {}), volume {} bits",
                req.soc.name(),
                run.schedule.makespan(),
                run.lower_bound,
                run.volume
            ),
            Ok(EngineOutput::Bounds(bounds)) => {
                println!("{:<8} bounds:   {bounds:?}", req.soc.name())
            }
            Ok(EngineOutput::Sweep(points)) => println!(
                "{:<8} sweep:    {} points, best T = {} cycles",
                req.soc.name(),
                points.len(),
                points.iter().map(|p| p.time).min().unwrap_or(0)
            ),
            Err(e) => println!("{:<8} failed:   {e}", req.soc.name()),
        }
    }

    let stats = engine.registry().stats();
    println!(
        "registry: {} hits / {} misses (hit rate {:.2}), {} contexts resident",
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        engine.registry().len()
    );
}
